"""Trace command group: ``trace list|capture|replay|analyze|convert``.

The CLI face of :mod:`repro.trace`: inspect trace files (either
format), capture any workload or scenario tenant into a v2 columnar
file, replay a trace through the machine on either burst engine,
run the vectorized analyzer, and convert v1 text ↔ v2 binary.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cli.common import WORKLOADS

__all__ = ["add_parsers"]


def add_parsers(sub) -> None:
    trace = sub.add_parser(
        "trace", help="trace files: inspect, capture, replay, analyze, convert"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    lst = trace_sub.add_parser("list", help="show metadata of trace files")
    lst.add_argument("paths", nargs="+", metavar="PATH",
                     help="trace files or directories to scan")
    lst.add_argument("--json", action="store_true")
    lst.set_defaults(handler=_list)

    capture = trace_sub.add_parser(
        "capture", help="freeze a workload or scenario tenant into a v2 trace"
    )
    capture.add_argument("out", metavar="OUT", help="output .rtrace path")
    source = capture.add_mutually_exclusive_group(required=True)
    source.add_argument("--workload", choices=sorted(WORKLOADS))
    source.add_argument("--scenario", metavar="NAME",
                        help="registered scenario to capture a tenant of")
    capture.add_argument("--tenant", metavar="NAME",
                         help="tenant name (required with --scenario)")
    capture.add_argument("--wss-pages", type=int, default=8_192)
    capture.add_argument("--accesses", type=int, default=100_000)
    capture.add_argument("--seed", type=int, default=42)
    capture.add_argument("--think-ns", type=int, default=1_000)
    capture.add_argument("--write-fraction", type=float, default=0.0)
    capture.add_argument("--param", action="append", default=[], metavar="K=V",
                         help="extra workload parameter (repeatable), e.g. "
                         "stride=7 or append_pages=32")
    capture.add_argument("--json", action="store_true")
    capture.set_defaults(handler=_capture)

    replay = trace_sub.add_parser(
        "replay", help="replay a trace file through the Leap machine"
    )
    replay.add_argument("path", metavar="TRACE")
    replay.add_argument("--engine", choices=("object", "vectorized"),
                        default="vectorized")
    replay.add_argument("--memory", type=float, default=0.5,
                        help="local memory as a fraction of the working set")
    replay.add_argument("--seed", type=int, default=42)
    replay.add_argument("--json", action="store_true")
    replay.set_defaults(handler=_replay)

    analyze = trace_sub.add_parser(
        "analyze", help="vectorized trace analysis (reuse, strides, regions)"
    )
    analyze.add_argument("path", metavar="TRACE")
    analyze.add_argument("--regions", type=int, default=8)
    analyze.add_argument("--out", metavar="FILE",
                         help="write the artifact JSON here as well")
    analyze.add_argument("--json", action="store_true")
    analyze.set_defaults(handler=_analyze)

    convert = trace_sub.add_parser(
        "convert", help="convert v1 text <-> v2 binary (direction follows src)"
    )
    convert.add_argument("src", metavar="SRC")
    convert.add_argument("dst", metavar="DST")
    convert.add_argument("--json", action="store_true")
    convert.set_defaults(handler=_convert)


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _meta_line(path: Path, meta: dict) -> str:
    return (
        f"{path}  [{meta['format']}]  name={meta['name']}  "
        f"count={meta['count']}  wss_pages={meta['wss_pages']}  "
        f"think_ns={meta['think_ns']}"
    )


def _list(args: argparse.Namespace) -> int:
    from repro.trace.convert import read_trace_meta, sniff_trace

    files: list[Path] = []
    for token in args.paths:
        path = Path(token)
        if path.is_dir():
            files.extend(
                child
                for child in sorted(path.iterdir())
                if child.is_file() and sniff_trace(child)
            )
        else:
            files.append(path)
    if not files:
        return _fail("no trace files found")
    rows = []
    status = 0
    for path in files:
        try:
            meta = read_trace_meta(path)
        except (OSError, ValueError) as error:
            status = 1
            if not args.json:
                print(f"{path}  error: {error}", file=sys.stderr)
            continue
        rows.append((path, meta))
    if args.json:
        print(json.dumps(
            {str(path): meta for path, meta in rows}, indent=2, sort_keys=True
        ))
    else:
        for path, meta in rows:
            print(_meta_line(path, meta))
    return status


def _parse_params(tokens: list[str]) -> dict:
    params: dict = {}
    for token in tokens:
        key, sep, value = token.partition("=")
        if not sep or not key:
            raise ValueError(f"--param expects K=V, got {token!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _capture(args: argparse.Namespace) -> int:
    from repro.trace.capture import capture_scenario_tenant, capture_workload

    try:
        params = _parse_params(args.param)
        if args.scenario:
            if not args.tenant:
                return _fail("--scenario needs --tenant NAME")
            header = capture_scenario_tenant(
                args.scenario,
                args.tenant,
                args.out,
                seed=args.seed,
                wss_pages=args.wss_pages,
                total_accesses=args.accesses,
            )
        else:
            if args.write_fraction > 0.0:
                params["write_fraction"] = args.write_fraction
            workload = WORKLOADS[args.workload](
                wss_pages=args.wss_pages,
                total_accesses=args.accesses,
                seed=args.seed,
                think_ns=args.think_ns,
                **params,
            )
            header = capture_workload(workload, args.out)
    except ModuleNotFoundError as error:
        return _fail(f"capture needs the [vectorized] extra ({error})")
    except (ValueError, TypeError, OSError) as error:
        return _fail(str(error))
    if args.json:
        print(json.dumps(header, indent=2, sort_keys=True))
    else:
        print(f"wrote {args.out}: {header['count']} accesses "
              f"({len(header['columns'])} columns)")
    return 0


def _replay(args: argparse.Namespace) -> int:
    import time

    from repro.sim.machine import Machine, leap_config
    from repro.sim.simulate import simulate
    from repro.trace.convert import load_any_trace

    try:
        workload = load_any_trace(args.path)
    except ModuleNotFoundError as error:
        return _fail(f"v2 replay needs the [vectorized] extra ({error})")
    except (OSError, ValueError) as error:
        return _fail(str(error))
    machine = Machine(leap_config(seed=args.seed, engine=args.engine))
    started = time.perf_counter()
    result = simulate(machine, {1: workload}, memory_fraction=args.memory)
    wall_clock_s = time.perf_counter() - started
    summary = result.recorder.summary()
    metrics = result.metrics
    row = {
        "trace": workload.name,
        "engine": args.engine,
        "accesses": workload.total_accesses,
        "completion_s": round(result.completion_seconds(1), 6),
        "p50_us": round(summary.get("p50", 0.0) / 1e3, 3),
        "p99_us": round(summary.get("p99", 0.0) / 1e3, 3),
        "faults": metrics.faults,
        "misses": metrics.misses,
        "coverage": metrics.coverage,
        "accuracy": metrics.accuracy,
        "wall_clock_s": round(wall_clock_s, 3),
    }
    if args.json:
        print(json.dumps(row, indent=2, sort_keys=True))
    else:
        print(
            f"{row['trace']} ({row['accesses']} accesses, {args.engine}): "
            f"completion {row['completion_s']:.4f} s, p50 {row['p50_us']:.2f} us, "
            f"p99 {row['p99_us']:.2f} us, {row['faults']} faults "
            f"[{row['wall_clock_s']:.3f} s wall]"
        )
    return 0


def _analyze(args: argparse.Namespace) -> int:
    from repro.trace.analyze import analyze_trace_file

    try:
        artifact = analyze_trace_file(args.path, regions=args.regions)
    except ModuleNotFoundError as error:
        return _fail(f"analyze needs the [vectorized] extra ({error})")
    except (OSError, ValueError) as error:
        return _fail(str(error))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(artifact, indent=2, sort_keys=True))
        return 0
    name = artifact["config"]["trace"]
    row = artifact["apps"][f"trace/{name}"]
    print(
        f"{name}: {row['accesses']} accesses over {row['unique_pages']} pages "
        f"({row['footprint_frac']:.1%} of wss)"
    )
    print(
        f"  mix: seq {row['seq_frac']:.1%}  stride {row['stride_frac']:.1%}  "
        f"repeat {row['repeat_frac']:.1%}  random {row['random_frac']:.1%}  "
        f"writes {row['write_frac']:.1%}"
    )
    print(
        f"  reuse distance: p50 {row['reuse_p50']:.0f}  p90 {row['reuse_p90']:.0f}  "
        f"p99 {row['reuse_p99']:.0f}  (<=64: {row['reuse_le_64']:.1%})"
    )
    print(f"  prefetchability: {row['prefetchability']:.1%}")
    for key in sorted(artifact["apps"]):
        if key.startswith("region/"):
            region = artifact["apps"][key]
            print(
                f"  {key}: share {region['share']:.1%}  "
                f"seq {region['seq_frac']:.1%}  "
                f"prefetchability {region['prefetchability']:.1%}"
            )
    if args.out:
        print(f"wrote {args.out}")
    return 0


def _convert(args: argparse.Namespace) -> int:
    from repro.trace.convert import convert_trace

    try:
        meta = convert_trace(args.src, args.dst)
    except ModuleNotFoundError as error:
        return _fail(f"convert needs the [vectorized] extra ({error})")
    except (OSError, ValueError) as error:
        return _fail(str(error))
    if args.json:
        print(json.dumps(meta, indent=2, sort_keys=True))
    else:
        print(f"wrote {args.dst} [{meta['format']}]: {meta['count']} accesses")
    return 0
