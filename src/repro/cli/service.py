"""Service command group: ``service submit|status|result|worker|gc``.

The long-running face of the reproduction: submit scenario/sweep jobs
into a persistent queue, run worker processes that fan sweep cells
across host cores, poll streamed progress, fetch verified
content-addressed results, and garbage-collect unreferenced blobs.
All commands share ``--root`` (default ``$REPRO_SERVICE_ROOT`` or
``.repro-service``), so any number of submitters and workers can meet
at one directory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.cli.common import int_list

__all__ = ["add_parsers"]

DEFAULT_ROOT = ".repro-service"


def _root_argument(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--root",
        default=os.environ.get("REPRO_SERVICE_ROOT", DEFAULT_ROOT),
        help="service state directory (queue + artifact store); "
        "defaults to $REPRO_SERVICE_ROOT or .repro-service",
    )


def add_parsers(sub) -> None:
    service = sub.add_parser(
        "service", help="run service: queued jobs, pooled workers, stored artifacts"
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)

    submit = service_sub.add_parser(
        "submit", help="submit a scenario run or a sweep; cache hits return instantly"
    )
    submit.add_argument(
        "scenarios",
        nargs="+",
        metavar="SCENARIO",
        help="registered scenario name(s), or path(s) to Scenario JSON files",
    )
    submit.add_argument("--sweep", action="store_true",
                        help="sweep a {cores x servers x prefetchers} grid")
    submit.add_argument("--seed", type=int, default=42)
    submit.add_argument("--cores", type=int_list, default=[4], metavar="N[,N]")
    submit.add_argument("--servers", type=int_list, default=None, metavar="N[,N]",
                        help="default: 0 for a scenario run, 2 for a sweep")
    submit.add_argument("--prefetchers", default=None, metavar="P[,P]",
                        help="prefetcher (scenario run) or comma list (sweep)")
    submit.add_argument("--wss-pages", type=int, default=None,
                        help="per-tenant working set (named scenarios only)")
    submit.add_argument("--accesses", type=int, default=None,
                        help="scenario access budget (named scenarios only)")
    submit.add_argument("--pool", type=int, default=2,
                        help="worker processes a sweep fans cells across")
    submit.add_argument("--trace", action="store_true",
                        help="record a deterministic trace (scenario jobs "
                        "only), stored as a content-addressed extra; fetch "
                        "with `service result --trace-out`")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes (needs a running worker)")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait poll budget in seconds")
    submit.add_argument("--json", action="store_true")
    _root_argument(submit)
    submit.set_defaults(handler=_submit)

    status = service_sub.add_parser("status", help="show a job's state and progress")
    status.add_argument("job_id")
    status.add_argument("--json", action="store_true")
    _root_argument(status)
    status.set_defaults(handler=_status)

    result = service_sub.add_parser(
        "result", help="fetch a finished job's stored (verified) payload"
    )
    result.add_argument("job_id")
    result.add_argument("--json", action="store_true")
    result.add_argument(
        "--artifact",
        metavar="FILE",
        help="also write a BENCH-shaped artifact for `repro perf compare`",
    )
    result.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the stored trace recording (submitted with --trace) "
        "for `repro obs top|export|diff`",
    )
    _root_argument(result)
    result.set_defaults(handler=_result)

    worker = service_sub.add_parser(
        "worker", help="claim and execute queued jobs until told to stop"
    )
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after this many jobs")
    worker.add_argument("--idle-timeout", type=float, default=None,
                        help="exit after the queue stays empty this long (s)")
    worker.add_argument("--poll-interval", type=float, default=0.5)
    worker.add_argument("--pool", type=int, default=None,
                        help="override sweep jobs' worker-pool size")
    _root_argument(worker)
    worker.set_defaults(handler=_worker)

    gc = service_sub.add_parser(
        "gc", help="remove payload blobs no stored run references"
    )
    gc.add_argument("--json", action="store_true")
    _root_argument(gc)
    gc.set_defaults(handler=_gc)


def _load_scenario_arg(token: str):
    """A submit operand: a registered name, a Scenario JSON file, or a
    trace file (v1 or v2, sniffed by magic) replayed as a single-tenant
    scenario."""
    if token.endswith(".json") or Path(token).is_file():
        from repro.trace.convert import sniff_trace, trace_tenant_scenario

        # Validate eagerly so a bad file fails at submit, not in a worker.
        from repro.scenarios import Scenario

        if Path(token).is_file() and sniff_trace(token):
            data = trace_tenant_scenario(token)
        else:
            data = json.loads(Path(token).read_text())
        return Scenario.from_dict(data).to_dict()
    return token


def _build_spec(args: argparse.Namespace):
    from repro.service import ScenarioJob, SweepJob

    scenarios = [_load_scenario_arg(token) for token in args.scenarios]
    if args.sweep:
        if args.trace:
            raise ValueError(
                "--trace applies to scenario jobs only (a sweep's cells "
                "run in pool workers; record one cell as a scenario job)"
            )
        prefetchers = (
            [p for p in args.prefetchers.split(",") if p]
            if args.prefetchers
            else ["leap", "readahead"]
        )
        return SweepJob(
            scenarios=tuple(scenarios),
            cores=tuple(args.cores),
            servers=tuple(args.servers if args.servers is not None else [2]),
            prefetchers=tuple(prefetchers),
            seed=args.seed,
            wss_pages=args.wss_pages,
            total_accesses=args.accesses,
            pool=args.pool,
        )
    if len(scenarios) != 1:
        raise ValueError("a scenario job takes exactly one scenario (or use --sweep)")
    for axis, values in (("--cores", args.cores), ("--servers", args.servers or [0])):
        if len(values) != 1:
            raise ValueError(f"{axis} takes one value without --sweep")
    if args.prefetchers and "," in args.prefetchers:
        raise ValueError("--prefetchers takes one value without --sweep")
    return ScenarioJob(
        scenario=scenarios[0],
        seed=args.seed,
        cores=args.cores[0],
        servers=(args.servers or [0])[0],
        prefetcher=args.prefetchers or None,
        wss_pages=args.wss_pages,
        total_accesses=args.accesses,
        trace=args.trace,
    )


def _print_record(status: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return
    line = (
        f"job {status['id']}  state={status['state']}  "
        f"run_key={status['run_key'][:12]}  cache_hit={status['cache_hit']}"
    )
    progress = status.get("progress")
    if progress and progress.get("total"):
        line += f"  cells {progress['done']}/{progress['total']}"
    print(line)
    if status.get("error"):
        print(f"error: {status['error'].strip().splitlines()[-1]}", file=sys.stderr)


def _submit(args: argparse.Namespace) -> int:
    from repro.service import RunService

    try:
        spec = _build_spec(args)
    except (ValueError, OSError, json.JSONDecodeError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = RunService(args.root)
    record = service.submit(spec)
    if args.wait and record.state not in ("done", "failed"):
        deadline = time.monotonic() + args.timeout
        last_done = -1
        status = service.status(record.id)
        while time.monotonic() < deadline:
            status = service.status(record.id)
            progress = status.get("progress") or {}
            if not args.json and progress.get("done", 0) != last_done:
                last_done = progress.get("done", 0)
                if progress.get("total"):
                    print(f"progress: {last_done}/{progress['total']} cells")
            if status["state"] in ("done", "failed"):
                break
            time.sleep(0.5)
        else:
            print(f"error: job {record.id} still running after "
                  f"{args.timeout:.0f}s", file=sys.stderr)
            return 3
        _print_record(status, args.json)
        return 0 if status["state"] == "done" else 1
    _print_record(service.status(record.id), args.json)
    return 0


def _status(args: argparse.Namespace) -> int:
    from repro.service import RunService

    service = RunService(args.root)
    try:
        status = service.status(args.job_id)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    _print_record(status, args.json)
    return 0 if status["state"] != "failed" else 1


def _result(args: argparse.Namespace) -> int:
    from repro.service import RunService, payload_to_artifact
    from repro.service.store import ArtifactIntegrityError

    service = RunService(args.root)
    try:
        meta, payload = service.result(args.job_id)
    except (KeyError, ValueError, ArtifactIntegrityError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.artifact:
        path = Path(args.artifact)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload_to_artifact(meta, payload), indent=2, sort_keys=True)
            + "\n"
        )
        if not args.json:
            print(f"wrote {path}")
    if args.trace_out:
        from repro.provenance import canonical_json

        try:
            recording = service.store.get_extra(meta["run_key"], "trace")
        except (KeyError, ArtifactIntegrityError) as error:
            print(
                f"error: {error} (was the job submitted with --trace?)",
                file=sys.stderr,
            )
            return 2
        path = Path(args.trace_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_json(recording) + "\n")
        if not args.json:
            print(f"wrote {path}")
    if args.json:
        print(json.dumps({"meta": meta, "payload": payload}, indent=2, sort_keys=True))
        return 0
    print(
        f"run {meta['run_key'][:12]}  kind={meta['kind']}  seed={meta['seed']}  "
        f"code_rev={meta['code_rev'][:12]}  blob={meta['blob'][:12]} "
        f"({meta['payload_bytes']} bytes)"
    )
    runs = payload.get("runs")
    if runs is not None:
        for run in runs:
            worst_p95 = max(row["p95_us"] for row in run["tenants"].values())
            print(
                f"  {run['scenario']} c{run['cores']} s{run['servers']} "
                f"{run['prefetcher']}: worst p95 {worst_p95:.2f} us, "
                f"makespan {run['totals']['makespan_s']:.3f} s"
            )
    else:
        for tenant, row in payload["tenants"].items():
            print(
                f"  {tenant}: p95 {row['p95_us']:.2f} us, "
                f"hit rate {row['hit_rate']:.1%}, "
                f"completion {row['completion_s']:.3f} s"
            )
    return 0


def _worker(args: argparse.Namespace) -> int:
    from repro.service import RunService

    service = RunService(args.root)
    processed = service.run_worker(
        max_jobs=args.max_jobs,
        idle_timeout=args.idle_timeout,
        poll_interval=args.poll_interval,
        pool=args.pool,
        log=print,
    )
    print(f"worker exiting after {processed} job(s)")
    return 0


def _gc(args: argparse.Namespace) -> int:
    from repro.service import RunService

    removed = RunService(args.root).gc()
    if args.json:
        print(json.dumps({"removed": removed}, indent=2, sort_keys=True))
    else:
        print(f"gc removed {len(removed)} unreferenced blob(s)")
    return 0
