"""``repro check`` — run the repo-specific static-analysis suite.

Exit status: 0 when no (unsuppressed) findings, 1 when findings
remain, 2 on usage errors (unknown rule id, unreadable baseline).

``--write-baseline`` records the current findings as a reviewed
suppression file; ``--baseline`` applies one.  Unused suppressions are
reported (and fail the run with ``--strict-baseline``) so stale
waivers get pruned once the underlying violation is fixed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.lint import (
    RULES,
    apply_baseline,
    load_baseline,
    run_check,
    write_baseline,
)

__all__ = ["add_parsers", "run"]


def add_parsers(sub) -> None:
    check = sub.add_parser(
        "check",
        help="run the repo-specific static-analysis rules (R1-R4)",
        description="AST-based determinism/hygiene/parity/counter checks; "
        "see docs/static-analysis.md for the rule catalog.",
    )
    check.add_argument(
        "--rule",
        action="append",
        choices=sorted(RULES),
        help="run only this rule (repeatable; default: all rules)",
    )
    check.add_argument("--json", action="store_true", help="emit findings as JSON")
    check.add_argument(
        "--baseline",
        type=Path,
        help="suppression file of reviewed finding fingerprints",
    )
    check.add_argument(
        "--write-baseline",
        type=Path,
        metavar="FILE",
        help="write current findings as a baseline file and exit 0",
    )
    check.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail when the baseline carries suppressions nothing matches",
    )
    check.add_argument(
        "--root",
        type=Path,
        help="repro package directory to analyze (default: the installed package)",
    )
    check.set_defaults(handler=run)


def run(args: argparse.Namespace) -> int:
    try:
        findings = run_check(repro_dir=args.root, rules=args.rule)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} suppression(s) to {args.write_baseline}")
        return 0

    unused: set[str] = set()
    if args.baseline:
        try:
            suppressed = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        findings, unused = apply_baseline(findings, suppressed)

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "unused_suppressions": sorted(unused),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        for fingerprint in sorted(unused):
            print(f"note: unused baseline suppression: {fingerprint}")
        if not findings:
            rules = ", ".join(args.rule) if args.rule else ", ".join(RULES)
            print(f"repro check: clean ({rules})")

    if findings:
        return 1
    if unused and args.strict_baseline:
        return 1
    return 0
