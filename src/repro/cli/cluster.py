"""Multi-process command group: ``concurrent`` and ``cluster``.

The engine-level entry points: several workloads at once through the
multi-core scheduler, optionally against the multi-server memory
cluster with failure injection.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import SYSTEMS, WORKLOADS, build_named_workloads
from repro.metrics.report import format_table

__all__ = ["add_parsers"]


def add_parsers(sub) -> None:
    concurrent = sub.add_parser(
        "concurrent", help="run several workloads at once across cores"
    )
    concurrent.add_argument(
        "workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        help="one process per workload name (repeats allowed)",
    )
    concurrent.add_argument("--system", choices=sorted(SYSTEMS), default="leap")
    concurrent.add_argument("--cores", type=int, default=4)
    concurrent.add_argument("--wss-pages", type=int, default=8_192)
    concurrent.add_argument("--accesses", type=int, default=30_000)
    concurrent.add_argument("--memory", type=float, default=0.5)
    concurrent.add_argument("--seed", type=int, default=42)
    concurrent.add_argument("--no-migration", action="store_true")
    concurrent.add_argument(
        "--perf-out", metavar="DIR", help="write a BENCH_concurrent.json artifact"
    )
    concurrent.set_defaults(handler=_run_concurrent)

    cluster = sub.add_parser(
        "cluster", help="run workloads against a multi-server memory cluster"
    )
    cluster.add_argument(
        "workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        help="one process per workload name (repeats allowed)",
    )
    cluster.add_argument("--servers", type=int, default=4)
    cluster.add_argument("--server-qps", type=int, default=2)
    cluster.add_argument(
        "--latency-spread",
        type=float,
        default=0.15,
        help="seeded per-server fabric-median spread in [0, 1)",
    )
    cluster.add_argument("--cores", type=int, default=4)
    cluster.add_argument("--wss-pages", type=int, default=8_192)
    cluster.add_argument("--accesses", type=int, default=30_000)
    cluster.add_argument("--memory", type=float, default=0.5)
    cluster.add_argument("--seed", type=int, default=42)
    cluster.add_argument("--no-migration", action="store_true")
    cluster.add_argument(
        "--fail-server",
        type=int,
        metavar="ID",
        help="crash this memory server mid-run (slabs are remapped)",
    )
    cluster.add_argument(
        "--fail-at-ms",
        type=float,
        default=5.0,
        help="when to crash it, in ms of measured simulated time",
    )
    cluster.add_argument(
        "--recover-at-ms",
        type=float,
        metavar="MS",
        help="bring the crashed server back (empty) at this time",
    )
    cluster.add_argument(
        "--perf-out", metavar="DIR", help="write a BENCH_cluster.json artifact"
    )
    cluster.set_defaults(handler=_run_cluster)


def _run_concurrent(args: argparse.Namespace) -> int:
    from repro.perf.artifacts import write_artifact
    from repro.perf.profile import percentiles_us, profile_concurrent
    from repro.sim.machine import Machine

    machine = Machine(SYSTEMS[args.system](args))
    workloads, names = build_named_workloads(args)
    try:
        result = machine.run_concurrent(
            workloads,
            cores=args.cores,
            memory_fraction=args.memory,
            allow_migration=not args.no_migration,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = []
    for pid, name in names.items():
        summary = result.processes[pid]
        stats = percentiles_us(summary.fault_latencies)
        rows.append(
            (
                name,
                f"{summary.completion_seconds:.3f}",
                f"{stats['p50_us']:.2f}",
                f"{stats['p95_us']:.2f}",
                f"{stats['p99_us']:.2f}",
                len(summary.fault_latencies),
                f"{summary.core_wait_ns / 1e6:.1f}",
                summary.migrations,
            )
        )
    print(
        format_table(
            [
                "process",
                "completion (s)",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "faults",
                "core wait (ms)",
                "migrations",
            ],
            rows,
            title=f"{len(workloads)} processes on {args.cores} cores "
            f"({args.system}, {args.memory:.0%} memory)",
        )
    )
    print(
        f"\nmakespan: {result.makespan_ns / 1e9:.3f}s  "
        f"migrations: {result.migrations}"
    )
    if args.perf_out:
        artifact = profile_concurrent(
            result,
            names,
            bench="concurrent",
            config={
                "seed": args.seed,
                "cores": args.cores,
                "system": args.system,
                "workloads": list(args.workloads),
            },
        )
        print(f"wrote {write_artifact(artifact, args.perf_out)}")
    return 0


def _run_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import FailureEvent
    from repro.perf.artifacts import write_artifact
    from repro.perf.profile import percentiles_us, profile_cluster
    from repro.sim.machine import Machine, cluster_config
    from repro.sim.units import ms

    if args.fail_server is not None:
        if not 0 <= args.fail_server < args.servers:
            print(
                f"error: --fail-server {args.fail_server} outside the cluster "
                f"(servers are 0..{args.servers - 1})",
                file=sys.stderr,
            )
            return 2
        if (
            args.recover_at_ms is not None
            and args.recover_at_ms <= args.fail_at_ms
        ):
            print(
                f"error: --recover-at-ms {args.recover_at_ms} must be after "
                f"--fail-at-ms {args.fail_at_ms}",
                file=sys.stderr,
            )
            return 2
    machine = Machine(
        cluster_config(
            seed=args.seed,
            remote_machines=args.servers,
            server_qps=args.server_qps,
            server_latency_spread=args.latency_spread,
        )
    )
    workloads, names = build_named_workloads(args)
    failure_plan = []
    if args.fail_server is not None:
        failure_plan.append(
            FailureEvent(ms(args.fail_at_ms), args.fail_server, "fail")
        )
        if args.recover_at_ms is not None:
            failure_plan.append(
                FailureEvent(ms(args.recover_at_ms), args.fail_server, "recover")
            )
    try:
        result = machine.run_cluster(
            workloads,
            cores=args.cores,
            memory_fraction=args.memory,
            allow_migration=not args.no_migration,
            failure_plan=failure_plan,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = []
    for pid, name in names.items():
        summary = result.processes[pid]
        stats = percentiles_us(summary.fault_latencies)
        rows.append(
            (
                name,
                f"{summary.completion_seconds:.3f}",
                f"{stats['p50_us']:.2f}",
                f"{stats['p95_us']:.2f}",
                f"{stats['p99_us']:.2f}",
                len(summary.fault_latencies),
            )
        )
    print(
        format_table(
            ["process", "completion (s)", "p50 (us)", "p95 (us)", "p99 (us)", "faults"],
            rows,
            title=f"{len(workloads)} processes on {args.cores} cores x "
            f"{args.servers} memory servers ({args.memory:.0%} memory)",
        )
    )
    agent = machine.host_agent
    server_rows = []
    for server_id, server in sorted(agent.remote_agents.items()):
        stats = percentiles_us(server.read_latencies)
        server_rows.append(
            (
                server_id,
                "up" if server.alive else "DOWN",
                f"{stats['p50_us']:.2f}",
                f"{stats['p95_us']:.2f}",
                f"{stats['p99_us']:.2f}",
                server.reads,
                server.writes,
                f"{server.utilization:.2%}",
            )
        )
    print()
    print(
        format_table(
            [
                "server",
                "state",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "reads",
                "writes",
                "util",
            ],
            server_rows,
            title="memory servers",
        )
    )
    recovery = agent.recovery_stats()
    print(
        f"\nslot reuse: {recovery['slot_reuses']} reused / "
        f"{recovery['slot_releases']} released"
    )
    if args.fail_server is not None:
        if machine.cluster.servers[args.fail_server].failures == 0:
            print(
                f"warning: the run ended before --fail-at-ms "
                f"{args.fail_at_ms} — server {args.fail_server} was never "
                f"crashed (raise --accesses or lower --fail-at-ms)"
            )
        else:
            checked, mismatched = agent.verify_contents()
            print(
                f"recovery: {recovery['remapped_slabs']} slabs remapped "
                f"({recovery['promoted_slabs']} replica promotions, "
                f"{recovery['refetched_pages']} pages re-fetched from disk, "
                f"{recovery['lost_pages']} lost); "
                f"contents: {checked - mismatched}/{checked} identical"
            )
    if args.perf_out:
        artifact = profile_cluster(
            result,
            names,
            bench="cluster",
            config={
                "seed": args.seed,
                "cores": args.cores,
                "servers": args.servers,
                "workloads": list(args.workloads),
            },
        )
        print(f"wrote {write_artifact(artifact, args.perf_out)}")
    return 0
