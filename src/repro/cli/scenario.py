"""Scenario command group: ``scenario list|run|sweep``.

The multi-tenant scenario engine's CLI face: list the registered
traffic mixes, run one (optionally on the cluster with failure
timelines, limit schedules, and a control plane), or sweep a grid.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import int_list
from repro.metrics.report import format_table

__all__ = ["add_parsers", "add_scenario_scale_args", "print_control_report"]


def add_scenario_scale_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--wss-pages", type=int, default=2_048,
                   help="per-tenant working set (pages)")
    p.add_argument("--accesses", type=int, default=24_000,
                   help="scenario access budget (split across tenants)")
    p.add_argument("--seed", type=int, default=42)


def add_parsers(sub) -> None:
    scenario = sub.add_parser(
        "scenario", help="declare/run/sweep multi-tenant traffic scenarios"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_list = scenario_sub.add_parser("list", help="list the registered scenarios")
    scenario_list.set_defaults(handler=_scenario_list)

    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario and print per-tenant metrics"
    )
    scenario_run.add_argument("name", help="a scenario from `repro scenario list`")
    scenario_run.add_argument("--cores", type=int, default=4)
    scenario_run.add_argument(
        "--servers",
        type=int,
        default=0,
        help="memory servers (0 = flat remote fabric; failure timelines force a cluster)",
    )
    scenario_run.add_argument(
        "--prefetcher", help="override the scenario's prefetcher choice"
    )
    scenario_run.add_argument(
        "--json", action="store_true", help="emit the result payload as JSON"
    )
    add_scenario_scale_args(scenario_run)
    scenario_run.set_defaults(handler=_scenario_run)

    scenario_sweep = scenario_sub.add_parser(
        "sweep", help="run scenarios across a {cores x servers x prefetchers} grid"
    )
    scenario_sweep.add_argument(
        "names",
        nargs="*",
        help="scenarios to sweep (default: all registered)",
    )
    scenario_sweep.add_argument(
        "--cores", type=int_list, default=[2, 4], metavar="N,N"
    )
    scenario_sweep.add_argument(
        "--servers", type=int_list, default=[2, 4], metavar="N,N"
    )
    scenario_sweep.add_argument(
        "--prefetchers",
        default="leap,readahead",
        help="comma-separated prefetcher list",
    )
    scenario_sweep.add_argument(
        "--out", metavar="FILE", help="write the sweep payload as JSON"
    )
    add_scenario_scale_args(scenario_sweep)
    scenario_sweep.set_defaults(handler=_scenario_sweep)


def _scenario_list(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios

    rows = []
    for scenario in list_scenarios():
        extras = []
        if scenario.popularity_skew is not None:
            extras.append(f"zipf {scenario.popularity_skew:g}")
        if scenario.memory_schedule:
            extras.append("limit schedule")
        if scenario.failures:
            extras.append("failures")
        if scenario.control is not None:
            parts = []
            if scenario.control.governor is not None:
                parts.append("governor")
            if scenario.control.balancer is not None:
                parts.append("balancer")
            extras.append("+".join(parts))
        rows.append(
            (
                scenario.name,
                len(scenario.tenants),
                ", ".join(extras) or "-",
                scenario.description,
            )
        )
    print(
        format_table(
            ["scenario", "tenants", "features", "description"],
            rows,
            title="Run with: repro scenario run <name>",
        )
    )
    return 0


def print_control_report(control: dict) -> None:
    """Human-readable policy decisions and limit trajectories."""
    decisions = control.get("decisions", ())
    if decisions:
        print()
        print(
            format_table(
                ["at (ms)", "tenant", "swap", "reason", "score"],
                [
                    (
                        f"{d['at_ms']:.1f}",
                        d["tenant"],
                        f"{d['from']} -> {d['to']}",
                        d["reason"],
                        f"{d['from_score']:.2f}"
                        + (
                            f" vs {d['to_score']:.2f}"
                            if d["to_score"] is not None
                            else ""
                        ),
                    )
                    for d in decisions
                ],
                title="governor decisions",
            )
        )
    elif "decisions" in control:
        print("\ngovernor: no policy swaps (the starting policy held)")
    if "policies" in control:
        print(
            "final policies: "
            + ", ".join(f"{t}={p}" for t, p in sorted(control["policies"].items()))
        )
    rebalances = control.get("rebalances", ())
    if rebalances:
        print()
        print(
            format_table(
                ["at (ms)", "donor", "receiver", "pages", "limits after"],
                [
                    (
                        f"{m['at_ms']:.1f}",
                        m["donor"],
                        m["receiver"],
                        m["pages"],
                        f"{m['donor']}={m['donor_limit']} "
                        f"{m['receiver']}={m['receiver_limit']}",
                    )
                    for m in rebalances
                ],
                title="memory rebalances",
            )
        )
    elif "rebalances" in control:
        print("balancer: no budget moved (pressures stayed within the gap)")
    for tenant, points in sorted(control.get("limits", {}).items()):
        path = " -> ".join(f"{limit}@{at:g}ms" for at, limit in points)
        print(f"limit trajectory {tenant}: {path}")


def _scenario_run(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import run_scenario

    try:
        payload = run_scenario(
            args.name,
            seed=args.seed,
            cores=args.cores,
            servers=args.servers,
            prefetcher=args.prefetcher,
            wss_pages=args.wss_pages,
            total_accesses=args.accesses,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    config = payload["config"]
    print(
        format_table(
            [
                "tenant",
                "workload",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "hit rate",
                "faults",
                "completion (s)",
            ],
            [
                (
                    name,
                    row["workload"],
                    f"{row['p50_us']:.2f}",
                    f"{row['p95_us']:.2f}",
                    f"{row['p99_us']:.2f}",
                    f"{row['hit_rate']:.1%}",
                    row["faults"],
                    f"{row['completion_s']:.3f}",
                )
                for name, row in payload["tenants"].items()
            ],
            title=f"scenario {payload['scenario']} — {config['cores']} cores, "
            f"{config['servers']} servers, {config['prefetcher']} "
            f"({config['engine']} engine)",
        )
    )
    totals = payload["totals"]
    print(
        f"\nmakespan: {totals['makespan_s']:.3f}s  faults: {totals['faults']}  "
        f"migrations: {totals['migrations']}"
    )
    unfired = totals.get("unfired_timeline_events", 0)
    if unfired:
        print(
            f"warning: {unfired} scheduled event(s) (memory phases / "
            f"failures) never fired — the run ended first (raise "
            f"--accesses or use earlier event times)"
        )
    if "control" in payload:
        print_control_report(payload["control"])
    if "recovery" in payload:
        recovery = payload["recovery"]
        print(
            f"recovery: {recovery['remapped_slabs']} slabs remapped, "
            f"{recovery['refetched_pages']} pages re-fetched, "
            f"{recovery['lost_pages']} lost"
        )
    return 0


def _scenario_sweep(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.scenarios import scenario_names, sweep_scenarios

    names = args.names or scenario_names()
    prefetchers = [token for token in args.prefetchers.split(",") if token]
    try:
        payload = sweep_scenarios(
            names,
            cores=args.cores,
            servers=args.servers,
            prefetchers=prefetchers,
            seed=args.seed,
            wss_pages=args.wss_pages,
            total_accesses=args.accesses,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = []
    for run in payload["runs"]:
        worst_p95 = max(row["p95_us"] for row in run["tenants"].values())
        rows.append(
            (
                run["scenario"],
                run["cores"],
                run["servers"],
                run["prefetcher"],
                f"{worst_p95:.2f}",
                f"{run['totals']['makespan_s']:.3f}",
                run["totals"]["faults"],
            )
        )
    print(
        format_table(
            [
                "scenario",
                "cores",
                "servers",
                "prefetcher",
                "worst p95 (us)",
                "makespan (s)",
                "faults",
            ],
            rows,
            title=f"{len(payload['runs'])} grid points "
            f"({len(names)} scenarios, seed {args.seed})",
        )
    )
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")
    return 0
