"""Shared CLI plumbing: workload/system registries and arg helpers.

Every command group module registers its subcommands against the one
``repro`` parser via an ``add_parsers(sub)`` hook and binds a handler
with ``set_defaults(handler=...)``; this module holds what those
groups share so no group imports another.
"""

from __future__ import annotations

import argparse

from repro.workloads.base import Workload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.numpy_matmul import NumpyMatmulWorkload
from repro.workloads.patterns import (
    RandomWorkload,
    SequentialWorkload,
    StrideWorkload,
    ZipfianWorkload,
)
from repro.workloads.kvcache import KVCacheWorkload
from repro.workloads.powergraph import PowerGraphWorkload
from repro.workloads.voltdb import VoltDBWorkload

__all__ = [
    "SYSTEMS",
    "WORKLOADS",
    "add_workload_args",
    "build_named_workloads",
    "int_list",
    "make_workload",
]

WORKLOADS = {
    "sequential": SequentialWorkload,
    "stride": StrideWorkload,
    "random": RandomWorkload,
    "zipfian": ZipfianWorkload,
    "powergraph": PowerGraphWorkload,
    "numpy": NumpyMatmulWorkload,
    "voltdb": VoltDBWorkload,
    "memcached": MemcachedWorkload,
    "kvcache": KVCacheWorkload,
}


def _make_systems():
    from repro.sim.machine import disk_config, infiniswap_config, leap_config

    return {
        "disk": lambda args: disk_config(medium="hdd", seed=args.seed),
        "ssd": lambda args: disk_config(medium="ssd", seed=args.seed),
        "d-vmm": lambda args: infiniswap_config(seed=args.seed),
        "leap": lambda args: leap_config(seed=args.seed),
    }


SYSTEMS = _make_systems()


def add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--wss-pages", type=int, default=8_192)
    p.add_argument("--accesses", type=int, default=30_000)
    p.add_argument(
        "--memory",
        type=float,
        default=0.5,
        help="local memory as a fraction of the working set",
    )
    p.add_argument(
        "--stride", type=int, default=10, help="stride for the stride workload"
    )
    p.add_argument("--seed", type=int, default=42)


def int_list(text: str) -> list[int]:
    try:
        return [int(token) for token in text.split(",") if token]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated integer list, got {text!r}"
        ) from None


def make_workload(args) -> Workload:
    cls = WORKLOADS[args.workload]
    kwargs = dict(
        wss_pages=args.wss_pages, total_accesses=args.accesses, seed=args.seed
    )
    if args.workload == "stride":
        kwargs["stride"] = args.stride
    return cls(**kwargs)


def build_named_workloads(args) -> tuple[dict[int, Workload], dict[int, str]]:
    """One process per requested workload name (repeats allowed)."""
    workloads: dict[int, Workload] = {}
    names: dict[int, str] = {}
    for index, name in enumerate(args.workloads):
        pid = index + 1
        workloads[pid] = WORKLOADS[name](
            wss_pages=args.wss_pages,
            total_accesses=args.accesses,
            seed=args.seed + index,
        )
        names[pid] = f"{name}#{pid}"
    return workloads, names
