"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Ten commands cover the common interactive uses, one module per
command group:

* ``compare`` / ``run`` / ``figures`` (:mod:`repro.cli.figures`) — the
  quickstart D-VMM-vs-Leap comparison, one workload on one
  configuration, and the paper-figure benchmark listing;
* ``concurrent`` / ``cluster`` (:mod:`repro.cli.cluster`) — several
  workloads at once through the multi-core engine, optionally against
  a multi-server memory cluster with mid-run server crashes;
* ``scenario`` (:mod:`repro.cli.scenario`) — the multi-tenant scenario
  engine: ``list`` the named traffic mixes, ``run`` one, or ``sweep``
  a {cores × servers × prefetchers} grid;
* ``control`` (:mod:`repro.cli.control`) — governed-vs-static A/B:
  run a scenario under its online control plane (adaptive prefetcher
  governor, tenant memory balancer) against static prefetcher arms
  and report hit rates, policy decisions, and limit trajectories;
* ``service`` (:mod:`repro.cli.service`) — the long-running run
  service: ``submit`` scenario/sweep jobs to a persistent queue,
  ``worker`` processes that fan sweep cells across host cores,
  ``status``/``result`` for streamed progress and verified
  content-addressed results, ``gc`` for blob reclamation;
* ``trace`` (:mod:`repro.cli.trace`) — production-scale traces:
  ``list`` file metadata, ``capture`` any workload or scenario tenant
  into the columnar v2 container, ``replay`` a trace through either
  burst engine, ``analyze`` it with the vectorized kernel
  (reuse-distance/stride/region artifact), ``convert`` v1 ↔ v2;
* ``perf`` — the CI perf gate: emit a scaled-down profile artifact
  (``fig13``, ``cluster``, ``scenarios``, ``control``, or ``trace``)
  and compare it against a committed baseline;
* ``obs`` (:mod:`repro.cli.obs`) — deterministic run tracing:
  ``record`` a traced fig13/scenario run (byte-identical payloads to
  untraced runs), ``export`` to Perfetto JSON or columnar ``.npz``,
  ``top`` for per-stage fault-time attribution, ``timeline`` for the
  raw event stream, ``diff`` for stage-level deltas;
* ``check`` (:mod:`repro.cli.check`) — the repo-specific static
  analyzer: determinism, hot-path hygiene, engine parity, and counter
  registry rules (R1-R4; see docs/static-analysis.md).

Each group module registers its subcommands via ``add_parsers(sub)``
and binds its handler with ``set_defaults(handler=...)``; ``main``
just parses and dispatches.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import check as _check
from repro.cli import cluster as _cluster
from repro.cli import control as _control
from repro.cli import figures as _figures
from repro.cli import obs as _obs
from repro.cli import scenario as _scenario
from repro.cli import service as _service
from repro.cli import trace as _trace
from repro.cli.common import SYSTEMS, WORKLOADS
from repro.cli.figures import FIGURES

__all__ = ["FIGURES", "SYSTEMS", "WORKLOADS", "build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Effectively Prefetching Remote Memory with Leap'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _figures.add_parsers(sub)
    _cluster.add_parsers(sub)
    _scenario.add_parsers(sub)
    _control.add_parsers(sub)
    _service.add_parsers(sub)
    _trace.add_parsers(sub)
    _obs.add_parsers(sub)
    _check.add_parsers(sub)

    from repro.perf.__main__ import add_perf_arguments, run as perf_run

    perf = sub.add_parser(
        "perf",
        help="emit/gate a perf artifact (fig13, cluster, scenarios, control, or trace)",
    )
    add_perf_arguments(perf)
    perf.set_defaults(handler=perf_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
