"""Control-plane command group: ``repro control``.

Governed-vs-static A/B comparisons: run a scenario once under its
declared control plane (adaptive prefetcher governor and/or tenant
memory balancer) and once per static prefetcher, then report aggregate
hit rates, per-epoch policy decisions, and per-tenant limit
trajectories — the question the control plane must answer is "does
closing the loop beat the best static choice", and this command
answers it in one invocation.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.scenario import add_scenario_scale_args, print_control_report
from repro.metrics.report import format_table

__all__ = ["add_parsers"]


def add_parsers(sub) -> None:
    control = sub.add_parser(
        "control",
        help="A/B a governed scenario against static prefetcher choices",
    )
    control.add_argument(
        "name",
        nargs="?",
        default="phase-shift-governed",
        help="a scenario with a control plane (default: phase-shift-governed)",
    )
    control.add_argument("--cores", type=int, default=4)
    control.add_argument(
        "--servers",
        type=int,
        default=0,
        help="memory servers (0 = flat remote fabric)",
    )
    control.add_argument(
        "--statics",
        help="comma-separated static prefetcher arms "
        "(default: the governor's candidate set)",
    )
    control.add_argument(
        "--json", action="store_true", help="emit the A/B payload as JSON"
    )
    add_scenario_scale_args(control)
    control.set_defaults(handler=_run_control)


def _run_control(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import run_control_ab

    statics = None
    if args.statics:
        statics = tuple(token for token in args.statics.split(",") if token)
    try:
        payload = run_control_ab(
            args.name,
            statics=statics,
            seed=args.seed,
            cores=args.cores,
            servers=args.servers,
            wss_pages=args.wss_pages,
            total_accesses=args.accesses,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    summary = payload["summary"]
    rows = []
    for arm, run in payload["arms"].items():
        worst_p95 = max(row["p95_us"] for row in run["tenants"].values())
        rows.append(
            (
                arm,
                f"{summary['hit_rates'][arm]:.1%}",
                f"{worst_p95:.2f}",
                f"{run['totals']['makespan_s']:.3f}",
                run["totals"]["faults"],
            )
        )
    print(
        format_table(
            ["arm", "agg hit rate", "worst p95 (us)", "makespan (s)", "faults"],
            rows,
            title=f"scenario {payload['scenario']} — governed vs static "
            f"(seed {payload['config']['seed']}, {payload['config']['cores']} cores)",
        )
    )
    verdict = (
        f"governed {summary['governed_hit_rate']:.1%} BEATS best static "
        if summary["governed_beats_static"]
        else f"governed {summary['governed_hit_rate']:.1%} does NOT beat best static "
    )
    print(
        "\n"
        + verdict
        + f"{summary['best_static']} ({summary['best_static_hit_rate']:.1%})"
    )
    print_control_report(payload["arms"]["governed"].get("control", {}))
    return 0
