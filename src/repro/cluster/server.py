"""Memory servers: first-class remote nodes behind the slab allocator.

The flat :class:`repro.rdma.agent.RemoteAgent` only accounts capacity
and liveness — every remote machine shares one fabric model and the
host's dispatch queues, so remote-side contention, imbalance, and
heterogeneity are invisible.  A :class:`MemoryServer` is what the
paper's §4.4 host agent actually talks to: a machine with

* its own RDMA **queue pairs**, so a hot server's backlog delays only
  the operations targeting it (independent remote-side contention);
* its own **fabric profile** (:meth:`repro.rdma.network.RdmaFabric.variant`),
  so a server one switch hop further away is measurably slower;
* a **page store** of content fingerprints standing in for the page
  bytes the simulator never materializes — lost on failure, restored
  by replica promotion or re-fetch from the disk archive, and the
  thing recovery tests check for bit-identical contents;
* per-server latency samples and counters feeding the
  ``BENCH_cluster`` perf artifact's per-server p50/p95/p99 rows.
"""

from __future__ import annotations

import zlib

from repro.rdma.agent import RemoteAgent
from repro.rdma.network import RdmaFabric
from repro.rdma.qp import DispatchQueue, Submission
from repro.sim.units import PAGE_SIZE

__all__ = ["MemoryServer", "page_fingerprint"]


def page_fingerprint(key: object, version: int) -> int:
    """Deterministic stand-in for one page's contents at one version.

    ``hash()`` is salted per interpreter run for strings, so the
    fingerprint is a CRC over a stable rendering instead — identical
    across runs, which is what lets a seeded failure/recovery run
    assert byte-identical contents.
    """
    return zlib.crc32(f"{key!r}#{version}".encode("utf-8"))


class MemoryServer(RemoteAgent):
    """One remote memory donor with queue pairs, fabric, and contents."""

    def __init__(
        self,
        machine_id: int,
        capacity_pages: int,
        fabric: RdmaFabric,
        n_qps: int = 2,
    ) -> None:
        super().__init__(machine_id, capacity_pages)
        if n_qps <= 0:
            raise ValueError(f"need at least one queue pair, got {n_qps}")
        self.fabric = fabric
        self.qps = [DispatchQueue(index) for index in range(n_qps)]
        #: Content fingerprints of pages stored here (primary or replica
        #: copies).  Volatile: cleared when the server fails.
        self.pages: dict[object, int] = {}
        self.reads = 0
        self.writes = 0
        self.failures = 0
        #: Per-op end-to-end latencies (ns) of reads served by this
        #: server — the per-server population behind BENCH_cluster.
        self.read_latencies: list[int] = []

    # -- load signal ------------------------------------------------------
    @property
    def utilization(self) -> float:
        return self.reserved_pages / self.capacity_pages

    def qp_backlog_ns(self, now: int) -> int:
        """Outstanding busy time across this server's queue pairs."""
        return sum(max(0, qp.busy_until - now) for qp in self.qps)

    #: Reserved-page equivalents one outstanding QP op weighs in
    #: :meth:`load_score`.  An op queued *now* delays every future read
    #: of every slab on this server, so it must count far more than one
    #: cold reserved page — at 64, a server with ~16 outstanding ops
    #: forfeits a one-slab (1024-page) utilization edge, making the
    #: heat signal comparable to the capacity signal instead of a mere
    #: tie-breaker.
    BACKLOG_PAGE_WEIGHT = 64

    def load_score(self, now: int) -> float:
        """Live load for power-of-two placement (lower is better).

        Combines committed capacity with *current* queue-pair backlog
        (weighted into reserved-page equivalents so the two terms share
        units), which is the feedback that steers new slabs away from a
        server that is full **or** hot.
        """
        backlog_ops = self.qp_backlog_ns(now) / max(
            1, self.fabric.service_time_ns()
        )
        return self.utilization + (
            backlog_ops * self.BACKLOG_PAGE_WEIGHT / self.capacity_pages
        )

    # -- data movement ----------------------------------------------------
    def submit(
        self, now: int, core: int, size_bytes: int = PAGE_SIZE
    ) -> Submission:
        """Run one op through this server's queue pair for *core*.

        The op occupies the QP for the server-side service time (wire +
        NIC processing at the remote end) and completes after this
        server's own fabric latency — so two reads against different
        servers never contend, and two against the same one do.
        """
        if not self.alive:
            raise RuntimeError(f"server {self.machine_id} is down")
        qp = self.qps[core % len(self.qps)]
        return qp.submit(
            now,
            service_ns=self.fabric.service_time_ns(size_bytes),
            fabric_ns=self.fabric.fabric_latency_ns(size_bytes),
        )

    # -- page contents -----------------------------------------------------
    def store(self, key: object, fingerprint: int) -> None:
        self.pages[key] = fingerprint

    def load(self, key: object) -> int | None:
        return self.pages.get(key)

    def discard(self, key: object) -> None:
        self.pages.pop(key, None)

    # -- liveness ----------------------------------------------------------
    def fail(self) -> None:
        """Crash: liveness *and* contents are gone (memory is volatile)."""
        super().fail()
        self.failures += 1
        self.pages.clear()

    # -- introspection -----------------------------------------------------
    def stats_row(self) -> dict:
        """Per-server row for the cluster perf artifact."""
        qp_ops = sum(qp.stats.operations for qp in self.qps)
        qp_delay = sum(qp.stats.total_queueing_delay for qp in self.qps)
        return {
            "reads": self.reads,
            "writes": self.writes,
            "qp_ops": qp_ops,
            "mean_qp_delay_us": round(qp_delay / max(1, qp_ops) / 1e3, 3),
            "peak_qp_backlog_us": round(
                max((qp.stats.peak_backlog_ns for qp in self.qps), default=0) / 1e3, 3
            ),
            "utilization": round(self.utilization, 4),
            "pages_stored": len(self.pages),
            "alive": self.alive,
            "failures": self.failures,
        }
