"""The memory cluster: M servers, a disk archive, failure injection.

:class:`MemoryCluster` owns the remote side of the disaggregated
memory system: the :class:`MemoryServer` fleet (each with its own
queue pairs and fabric profile), and the *disk archive* — Infiniswap's
asynchronous disk backup that every remote write is mirrored to, and
the re-fetch source when a crash destroys both in-memory copies of a
slab.

Failure injection is expressed as :class:`FailureEvent` timelines fed
to :func:`repro.sim.scheduler.simulate_cluster`: at the event's
simulated time the server dies (its contents vanish) and the host
agent immediately remaps every slab that lost a copy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.server import MemoryServer
from repro.rdma.network import RdmaFabric
from repro.sim.rng import SimRandom

__all__ = ["FailureEvent", "MemoryCluster"]


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One liveness transition in a cluster run's failure plan.

    ``time_ns`` is measured from the start of the *measured* phase
    (after warmup), so a plan means the same thing at any warmup size.
    """

    time_ns: int
    server_id: int
    action: str = "fail"  # "fail" | "recover"

    def __post_init__(self) -> None:
        if self.action not in ("fail", "recover"):
            raise ValueError(f"unknown failure action {self.action!r}")
        if self.time_ns < 0:
            raise ValueError(f"event time must be >= 0, got {self.time_ns}")


class MemoryCluster:
    """A fleet of memory servers plus the durable disk archive."""

    def __init__(self, servers: list[MemoryServer]) -> None:
        if not servers:
            raise ValueError("a cluster needs at least one memory server")
        self.servers: dict[int, MemoryServer] = {
            server.machine_id: server for server in servers
        }
        if len(self.servers) != len(servers):
            raise ValueError("duplicate server ids in cluster")
        #: Disk backup of page fingerprints, written through on every
        #: remote write (never on the critical path in the model).
        self.archive: dict[object, int] = {}

    @classmethod
    def build(
        cls,
        rng: SimRandom,
        base_fabric: RdmaFabric,
        n_servers: int,
        capacity_pages: int,
        qps_per_server: int = 2,
        latency_spread: float = 0.0,
    ) -> "MemoryCluster":
        """Build *n_servers* nodes with seeded per-server heterogeneity.

        ``latency_spread`` widens each server's fabric median by a
        deterministic factor in ``[1 - spread, 1 + spread]`` — a rack
        is never perfectly uniform, and skewed-placement scenarios need
        servers that are actually different.
        """
        if n_servers <= 0:
            raise ValueError(f"need at least one server, got {n_servers}")
        if not 0.0 <= latency_spread < 1.0:
            raise ValueError(
                f"latency_spread must be in [0, 1), got {latency_spread}"
            )
        servers = []
        for server_id in range(n_servers):
            scale = 1.0
            if latency_spread:
                scale += latency_spread * rng.uniform(-1.0, 1.0)
            fabric = base_fabric.variant(
                rng.spawn(f"server{server_id}"), median_scale=scale
            )
            servers.append(
                MemoryServer(
                    machine_id=server_id,
                    capacity_pages=capacity_pages,
                    fabric=fabric,
                    n_qps=qps_per_server,
                )
            )
        return cls(servers)

    # -- liveness ----------------------------------------------------------
    def fail_server(self, server_id: int) -> MemoryServer:
        server = self.servers[server_id]
        server.fail()
        return server

    def recover_server(self, server_id: int) -> MemoryServer:
        server = self.servers[server_id]
        server.recover()
        return server

    @property
    def alive_servers(self) -> list[MemoryServer]:
        return [server for server in self.servers.values() if server.alive]

    # -- introspection -----------------------------------------------------
    def total_capacity_pages(self) -> int:
        return sum(server.capacity_pages for server in self.servers.values())

    def total_reserved_pages(self) -> int:
        return sum(server.reserved_pages for server in self.servers.values())

    def utilizations(self) -> dict[int, float]:
        return {
            server_id: server.utilization
            for server_id, server in self.servers.items()
        }

    def server_stats(self) -> dict[int, dict]:
        return {
            server_id: server.stats_row()
            for server_id, server in sorted(self.servers.items())
        }
