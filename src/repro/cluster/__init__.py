"""Multi-server disaggregated memory: real nodes behind the slab map.

The cluster subsystem turns the slab allocator's abstract machine ids
into first-class :class:`MemoryServer` objects — per-server capacity,
queue pairs, fabric profiles, and page contents — governed by a
:class:`MemoryCluster` with failure injection and slab remap/re-fetch
recovery, fronted by the :class:`ClusterHostAgent`.

Entry points: ``cluster_config()`` + ``Machine.run_cluster`` for
simulation, ``repro cluster`` on the CLI, and
``repro perf --profile cluster`` for the CI-gated perf artifact.
"""

from repro.cluster.agent import ClusterHostAgent
from repro.cluster.cluster import FailureEvent, MemoryCluster
from repro.cluster.server import MemoryServer, page_fingerprint

__all__ = [
    "ClusterHostAgent",
    "FailureEvent",
    "MemoryCluster",
    "MemoryServer",
    "page_fingerprint",
]
