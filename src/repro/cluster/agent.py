"""The cluster host agent: slab placement over real memory servers.

Extends the flat :class:`repro.rdma.agent.HostAgent` in four ways:

* **Two-stage dispatch** — an op first occupies the host's per-core
  dispatch queue (local NIC wire time), then the *target server's*
  queue pair with that server's own service and fabric latency.  A hot
  server backs up its own QPs without slowing reads to its neighbours.
* **Placement feedback** — power-of-two choices compares *live* server
  load (:meth:`MemoryServer.load_score`: utilization + QP backlog)
  instead of reserved capacity alone, so placement steers around both
  full and hot servers.
* **Contents** — every write stores a page fingerprint on the primary
  and replica and writes it through to the cluster's disk archive
  (Infiniswap's asynchronous disk backup), so recovery can prove pages
  survived a crash bit-identically.
* **Recovery** — when a server dies, its slabs are remapped: replica
  promotion where a live replica exists, re-fetch from the disk
  archive otherwise, then re-replication — all through the seeded
  placement stream, so a fixed seed reproduces the exact remap.
"""

from __future__ import annotations

from repro.cluster.server import MemoryServer, page_fingerprint
from repro.obs.names import CLUSTER_DISPATCH, core_track
from repro.rdma.agent import HostAgent, RemotePageLostError
from repro.rdma.network import RdmaFabric
from repro.rdma.qp import Submission
from repro.rdma.slab import Slab
from repro.sim.rng import SimRandom

__all__ = ["ClusterHostAgent"]


class ClusterHostAgent(HostAgent):
    """Host-side gateway to a cluster of :class:`MemoryServer` nodes."""

    def __init__(
        self,
        cluster,
        rng: SimRandom,
        n_cores: int = 8,
        slab_capacity_pages: int = 4096,
        replication: bool = True,
        host_fabric: RdmaFabric | None = None,
    ) -> None:
        servers = list(cluster.servers.values())
        fabric = host_fabric if host_fabric is not None else servers[0].fabric
        super().__init__(
            fabric,
            servers,
            rng,
            n_cores=n_cores,
            slab_capacity_pages=slab_capacity_pages,
            replication=replication,
        )
        self.cluster = cluster
        #: Latest content version per page, bumped on every write; the
        #: fingerprint of (key, version) is what recovery must preserve.
        self._versions: dict[object, int] = {}
        #: Simulated time of the last dispatched op — the load signal
        #: placement reads (placement itself carries no timestamp).
        self._now_hint = 0
        self.remapped_slabs = 0
        self.promoted_slabs = 0
        self.refetched_pages = 0
        self.recovered_pages = 0
        self.lost_pages = 0

    # -- placement feedback ------------------------------------------------
    def _placement_load(self, agent: MemoryServer) -> float:
        return agent.load_score(self._now_hint)

    # -- server resolution -------------------------------------------------
    def resolve_server(self, key: object) -> int | None:
        """The server a read of *key* would hit right now, if placed."""
        location = self.allocator.location_of(key)
        if location is None:
            return None
        slab = self.allocator.slab_of(location)
        if self.remote_agents[slab.machine_id].alive:
            return slab.machine_id
        replica_id = slab.replica_machine_id
        if replica_id is not None and self.remote_agents[replica_id].alive:
            return replica_id
        return None

    def _server_for_read(self, slab: Slab, hint: int | None) -> MemoryServer:
        if hint is not None and hint in (slab.machine_id, slab.replica_machine_id):
            server = self.remote_agents[hint]
            if server.alive:
                if hint != slab.machine_id:
                    self.failovers += 1
                return server
        return self._readable_machine(slab)

    # -- data movement -----------------------------------------------------
    def read_page(
        self, key: object, now: int, core: int = 0, server: int | None = None
    ) -> Submission:
        """Host dispatch, then the serving server's QP and fabric."""
        self._now_hint = now
        location = self.place_page(key)
        slab = self.allocator.slab_of(location)
        target = self._server_for_read(slab, server)
        self.reads += 1
        target.reads += 1
        if self.tracer.enabled:
            self.tracer.instant(
                CLUSTER_DISPATCH, core_track(core), now, target.machine_id
            )
        host = self._queue_for(core).submit(
            now, service_ns=self.fabric.service_time_ns(), fabric_ns=0
        )
        remote = target.submit(host.completed, core)
        submission = Submission(
            submitted=now, started=host.started, completed=remote.completed
        )
        target.read_latencies.append(submission.total_latency)
        return submission

    def _write_to(self, server: MemoryServer, now: int, core: int) -> Submission:
        host = self._queue_for(core).submit(
            now, service_ns=self.fabric.service_time_ns(), fabric_ns=0
        )
        server.writes += 1
        return server.submit(host.completed, core)

    def write_page(
        self, key: object, now: int, core: int = 0, server: int | None = None
    ) -> Submission:
        """Write to the primary (and replica), record contents."""
        self._now_hint = now
        location = self.place_page(key)
        slab = self.allocator.slab_of(location)
        primary = self.remote_agents[slab.machine_id]
        if not primary.alive:
            # The slab escaped recovery (e.g. the crash callback has
            # not run); repair it on the spot with full accounting.
            self._repair_slab(slab, slab.machine_id)
            primary = self.remote_agents[slab.machine_id]
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        fingerprint = page_fingerprint(key, version)
        self.writes += 1
        submission = self._write_to(primary, now, core)
        primary.store(key, fingerprint)
        completed = submission.completed
        replica_id = slab.replica_machine_id
        if self.replication and replica_id is not None:
            replica = self.remote_agents[replica_id]
            if replica.alive:
                replica_sub = self._write_to(replica, now, core)
                replica.store(key, fingerprint)
                completed = max(completed, replica_sub.completed)
        # Infiniswap's asynchronous disk backup: always durable, never
        # on the critical path — the re-fetch source when both in-memory
        # copies are gone.
        self.cluster.archive[key] = fingerprint
        return Submission(
            submitted=now, started=submission.started, completed=completed
        )

    def release_page(self, key: object) -> bool:
        """Reclaim the slot *and* the content copies it pinned."""
        location = self.allocator.location_of(key)
        if location is None:
            return False
        slab = self.allocator.slab_of(location)
        self.allocator.release(key)
        for machine_id in (slab.machine_id, slab.replica_machine_id):
            if machine_id is not None:
                self.remote_agents[machine_id].discard(key)
        self.cluster.archive.pop(key, None)
        return True

    # -- failure recovery --------------------------------------------------
    def _clone_contents(
        self, keys: list[object], source: MemoryServer, target: MemoryServer
    ) -> int:
        copied = 0
        for key in keys:
            fingerprint = source.load(key)
            if fingerprint is not None:
                target.store(key, fingerprint)
                copied += 1
        return copied

    def _refetch_from_archive(
        self, keys: list[object], target: MemoryServer
    ) -> None:
        for key in keys:
            fingerprint = self.cluster.archive.get(key)
            if fingerprint is None:
                self.lost_pages += 1
            else:
                target.store(key, fingerprint)
                self.refetched_pages += 1

    def _remap_slab(self, slab: Slab, dead_id: int) -> None:
        """Give *slab* a live primary after *dead_id* crashed."""
        keys = self.allocator.keys_in_slab(slab.slab_id)
        replica_id = slab.replica_machine_id
        if replica_id is not None and self.remote_agents[replica_id].alive:
            # Promote the replica: its copy is already in memory.
            slab.machine_id = replica_id
            slab.replica_machine_id = None
            self.promoted_slabs += 1
            self.recovered_pages += len(keys)
        else:
            new_primary = self._pick_machine(exclude={dead_id})
            new_primary.reserve_slab(self.allocator.slab_capacity_pages)
            slab.machine_id = new_primary.machine_id
            slab.replica_machine_id = None
            self._refetch_from_archive(keys, new_primary)

    def _replace_replica(self, slab: Slab, exclude: set[int]) -> None:
        """Restore one in-memory replica for *slab*, capacity permitting."""
        try:
            new_replica = self._pick_machine(exclude=exclude | {slab.machine_id})
        except RemotePageLostError:
            return  # degrade to unreplicated rather than fail recovery
        new_replica.reserve_slab(self.allocator.slab_capacity_pages)
        slab.replica_machine_id = new_replica.machine_id
        keys = self.allocator.keys_in_slab(slab.slab_id)
        self._clone_contents(keys, self.remote_agents[slab.machine_id], new_replica)

    def _repair_slab(self, slab: Slab, dead_id: int) -> None:
        """Full repair of a slab whose primary died on *dead_id*.

        Remaps the primary (replica promotion or archive re-fetch),
        restores replication, releases the dead server's reservation,
        and counts the remap — the single path shared by bulk recovery
        and the defensive in-line repair on a write to a dead primary.
        """
        self._remap_slab(slab, dead_id)
        if self.replication and slab.replica_machine_id is None:
            self._replace_replica(slab, exclude={dead_id})
        dead = self.remote_agents[dead_id]
        dead.release_slab(
            min(self.allocator.slab_capacity_pages, dead.reserved_pages)
        )
        self.remapped_slabs += 1

    def recover_from_failure(self, dead_id: int) -> int:
        """Remap every slab that lost a copy on *dead_id*.

        Slabs are visited in slab-id order and new homes come from the
        seeded placement stream, so the remap is deterministic for a
        fixed seed.  Returns the number of slabs touched.
        """
        dead = self.remote_agents[dead_id]
        slab_pages = self.allocator.slab_capacity_pages
        touched = 0
        for slab in self.allocator.slabs.values():
            if slab.machine_id == dead_id:
                self._repair_slab(slab, dead_id)
                touched += 1
            elif slab.replica_machine_id == dead_id:
                slab.replica_machine_id = None
                if self.replication:
                    self._replace_replica(slab, exclude={dead_id})
                dead.release_slab(min(slab_pages, dead.reserved_pages))
                self.remapped_slabs += 1
                touched += 1
        return touched

    # -- verification ------------------------------------------------------
    def verify_contents(self) -> tuple[int, int]:
        """Check every placed page against its expected fingerprint.

        Returns ``(checked, mismatched)``; a recovery is lossless when
        no checked page mismatches.  Pages whose slot was reclaimed
        (resident again, no remote copy) are skipped — their contents
        live in host RAM.
        """
        checked = 0
        mismatched = 0
        for key, version in self._versions.items():
            location = self.allocator.location_of(key)
            if location is None:
                continue
            slab = self.allocator.slab_of(location)
            checked += 1
            expected = page_fingerprint(key, version)
            stored = None
            primary = self.remote_agents[slab.machine_id]
            if primary.alive:
                stored = primary.load(key)
            if stored is None and slab.replica_machine_id is not None:
                replica = self.remote_agents[slab.replica_machine_id]
                if replica.alive:
                    stored = replica.load(key)
            if stored != expected:
                mismatched += 1
        return checked, mismatched

    # -- introspection -----------------------------------------------------
    def recovery_stats(self) -> dict:
        return {
            "remapped_slabs": self.remapped_slabs,
            "promoted_slabs": self.promoted_slabs,
            "recovered_pages": self.recovered_pages,
            "refetched_pages": self.refetched_pages,
            "lost_pages": self.lost_pages,
            "failovers": self.failovers,
            "slot_releases": self.allocator.released_slots,
            "slot_reuses": self.allocator.reused_slots,
        }
