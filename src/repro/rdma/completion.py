"""First-class completion queues for in-flight remote reads.

Leap's datapath keeps the faulting process and the prefetcher on *one*
asynchronous I/O path: a demand read and a prefetch are both entries on
a completion queue with an arrival deadline, and a demand fault that
lands on a page whose prefetch is already in flight **attaches** to
that entry instead of re-issuing the read (§4.2's "wait on the
in-flight I/O" case).  :class:`CompletionQueue` is the simulator's
model of that structure:

* every issued read — demand or prefetch — is an :class:`InflightRead`
  with an ``arrival_at`` deadline;
* :meth:`attach` coalesces a duplicate key onto the in-flight entry
  (counted, never re-issued);
* :meth:`drain` retires entries whose deadline has passed — the
  *complete* stage of the fault pipeline, run per fault and once per
  access batch;
* an optional per-core ``depth_limit`` models bounded QP queue depth:
  :meth:`can_issue` refusing a core is the backpressure signal that
  clips a prefetch round instead of queueing without bound.

The queue is pure bookkeeping over simulated timestamps produced by the
data path; it draws no randomness and never alters timing, so the
simulation stays bit-deterministic for a fixed seed.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

from repro.obs.names import CQ_ARRIVAL, CQ_COALESCE, CQ_DEPTH, core_track
from repro.obs.trace import NULL_TRACER

__all__ = ["CompletionQueue", "InflightKind", "InflightRead"]


class InflightKind(enum.Enum):
    """Why a read is on the wire."""

    DEMAND = "demand"
    PREFETCH = "prefetch"


@dataclass(slots=True)
class InflightRead:
    """One read on the wire: identity, origin, and arrival deadline."""

    key: object
    kind: InflightKind
    core: int
    issued_at: int
    arrival_at: int
    #: Demand faults that attached to this entry instead of re-issuing.
    waiters: int = 0
    #: Retired (drained); kept so stale heap copies are skipped.
    done: bool = False


class CompletionQueue:
    """In-flight reads ordered by arrival deadline, with depth limits."""

    def __init__(self, depth_limit: int | None = None, tracer=None) -> None:
        if depth_limit is not None and depth_limit < 1:
            raise ValueError(f"depth_limit must be >= 1 or None, got {depth_limit}")
        self.depth_limit = depth_limit
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Latest live entry per key (a key re-issued after an untimely
        #: eviction shadows the stale copy; the heap retires both).
        self._by_key: dict[object, InflightRead] = {}
        self._arrivals: list[tuple[int, int, InflightRead]] = []
        self._seq = 0
        self._per_core: dict[int, int] = {}
        self.issued_demand = 0
        self.issued_prefetch = 0
        self.coalesced = 0
        self.completed = 0
        self.rejected = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._arrivals)

    def __contains__(self, key: object) -> bool:
        return key in self._by_key

    def depth(self, core: int | None = None) -> int:
        """Outstanding (not yet drained) reads, overall or per core."""
        if core is None:
            return len(self._arrivals)
        return self._per_core.get(core, 0)

    def lookup(self, key: object) -> InflightRead | None:
        return self._by_key.get(key)

    def can_issue(self, core: int, now: int) -> bool:
        """Whether *core*'s QP has room for one more read right now.

        Drains due completions first so the check reflects what is
        genuinely on the wire, not stale bookkeeping.
        """
        if self.depth_limit is None:
            return True
        self.drain(now)
        return self._per_core.get(core, 0) < self.depth_limit

    def issue(
        self,
        key: object,
        kind: InflightKind,
        core: int,
        issued_at: int,
        arrival_at: int,
    ) -> InflightRead:
        """Register one read on the wire; returns its entry."""
        if arrival_at < issued_at:
            raise ValueError(f"arrival {arrival_at} precedes issue {issued_at} for {key}")
        entry = InflightRead(
            key=key, kind=kind, core=core, issued_at=issued_at, arrival_at=arrival_at
        )
        self._by_key[key] = entry
        self._seq += 1
        heapq.heappush(self._arrivals, (arrival_at, self._seq, entry))
        self._per_core[core] = self._per_core.get(core, 0) + 1
        if kind is InflightKind.DEMAND:
            self.issued_demand += 1
        else:
            self.issued_prefetch += 1
        if len(self._arrivals) > self.peak_depth:
            self.peak_depth = len(self._arrivals)
        if self.tracer.enabled:
            self.tracer.counter(
                CQ_DEPTH, core_track(core), issued_at, self._per_core[core]
            )
        return entry

    def attach(self, key: object, now: int) -> InflightRead | None:
        """Coalesce a demand fault onto *key*'s in-flight read.

        Returns the entry the fault now waits on (its ``arrival_at`` is
        the fault's wake-up deadline), or None when the key is not
        tracked here (e.g. an entry inserted around the queue).
        """
        entry = self._by_key.get(key)
        if entry is None or entry.done:
            return None
        entry.waiters += 1
        self.coalesced += 1
        if self.tracer.enabled:
            self.tracer.instant(CQ_COALESCE, core_track(entry.core), now)
        return entry

    def record_rejection(self) -> None:
        """A prefetch round was clipped by the depth limit."""
        self.rejected += 1

    def drain(self, now: int) -> list[InflightRead]:
        """Retire every read whose arrival deadline has passed.

        The *complete* stage: entries with ``arrival_at <= now`` leave
        the wire (their QP depth frees) and are returned in arrival
        order.  A completion arriving in the same tick as its issue
        (``arrival_at == now``) retires in that same drain.
        """
        arrivals = self._arrivals
        if not arrivals or arrivals[0][0] > now:
            return []
        retired: list[InflightRead] = []
        while arrivals and arrivals[0][0] <= now:
            _, _, entry = heapq.heappop(arrivals)
            if entry.done:
                continue
            entry.done = True
            core_count = self._per_core.get(entry.core, 0)
            if core_count:
                self._per_core[entry.core] = core_count - 1
            if self._by_key.get(entry.key) is entry:
                del self._by_key[entry.key]
            self.completed += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    CQ_ARRIVAL,
                    core_track(entry.core),
                    entry.arrival_at,
                    entry.waiters,
                )
            retired.append(entry)
        return retired

    def reset_stats(self) -> None:
        """Zero the counters without dropping in-flight entries.

        Called between warmup and measurement: reads issued during
        warmup stay on the wire, but the measured window starts its
        accounting fresh (peak restarts from the live depth).
        """
        self.issued_demand = 0
        self.issued_prefetch = 0
        self.coalesced = 0
        self.completed = 0
        self.rejected = 0
        self.peak_depth = len(self._arrivals)

    def stats(self) -> dict[str, int]:
        return {
            "issued_demand": self.issued_demand,
            "issued_prefetch": self.issued_prefetch,
            "coalesced": self.coalesced,
            "completed": self.completed,
            "rejected": self.rejected,
            "inflight": len(self._arrivals),
            "peak_depth": self.peak_depth,
        }
