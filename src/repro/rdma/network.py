"""RDMA fabric latency model.

Anchored to the paper's measurements on 56 Gbps InfiniBand: a 4 KB
one-sided RDMA operation has a median end-to-end latency of 4.3 µs
(Figure 1), of which only the wire occupancy (4 KB at 56 Gbps is about
0.59 µs) serializes operations on a dispatch queue.  The rest —
propagation, remote NIC processing, DMA — is pipelined.  Congestion
therefore appears as queueing delay in :class:`repro.rdma.qp`, not as a
change to this model.
"""

from __future__ import annotations

from repro.sim.rng import DEFAULT_POOL_SIZE, SamplePool, SimRandom
from repro.sim.units import PAGE_SIZE, ns, us

__all__ = ["RdmaFabric"]

#: 56 Gbps InfiniBand FDR, as used in the paper's testbed.
DEFAULT_BANDWIDTH_GBPS = 56.0


class RdmaFabric:
    """Latency source for one-sided RDMA reads and writes."""

    def __init__(
        self,
        rng: SimRandom,
        median_ns: int = us(4.3),
        sigma: float = 0.18,
        bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
        per_op_cpu_ns: int = ns(400),
    ) -> None:
        if median_ns <= 0:
            raise ValueError(f"median_ns must be positive, got {median_ns}")
        if bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_gbps}")
        self._rng = rng
        self.median_ns = median_ns
        self.sigma = sigma
        self.bandwidth_gbps = bandwidth_gbps
        self.per_op_cpu_ns = per_op_cpu_ns
        self._service_cache: dict[int, int] = {}
        self._latency_pools: dict[int, SamplePool] = {}

    def variant(
        self,
        rng: SimRandom,
        median_scale: float = 1.0,
        bandwidth_scale: float = 1.0,
    ) -> "RdmaFabric":
        """A per-server fabric: same model, scaled parameters, own stream.

        Real clusters are not uniform — a server one switch hop further
        away, with a slower NIC, or on a congested rack sees a different
        latency profile.  Each :class:`repro.cluster.MemoryServer` owns
        a variant so remote-side latency and contention are independent
        per server.
        """
        return RdmaFabric(
            rng,
            median_ns=max(1, int(round(self.median_ns * median_scale))),
            sigma=self.sigma,
            bandwidth_gbps=self.bandwidth_gbps * bandwidth_scale,
            per_op_cpu_ns=self.per_op_cpu_ns,
        )

    def wire_time_ns(self, size_bytes: int = PAGE_SIZE) -> int:
        """Serialization time of *size_bytes* on the wire."""
        bits = size_bytes * 8
        return int(round(bits / (self.bandwidth_gbps * 1e9) * 1e9))

    def service_time_ns(self, size_bytes: int = PAGE_SIZE) -> int:
        """Time an op occupies a dispatch queue (wire + per-op CPU)."""
        service = self._service_cache.get(size_bytes)
        if service is None:
            service = self.wire_time_ns(size_bytes) + self.per_op_cpu_ns
            self._service_cache[size_bytes] = service
        return service

    def fabric_latency_ns(self, size_bytes: int = PAGE_SIZE) -> int:
        """Pipelined remainder of the end-to-end latency.

        Drawn so that ``service + fabric`` has the configured 4.3 µs
        median with a modest log-normal tail (RDMA is far more
        predictable than disk, but not constant — §2.2 notes single-µs
        latency is "often wishful thinking in practice").  Draws cycle
        through a pre-computed pool (see
        :data:`repro.datapath.stages.SAMPLE_POOL_SIZE`) so the fault
        hot loop pays an index increment, not an ``exp``/``gauss``.
        """
        pool = self._latency_pools.get(size_bytes)
        if pool is None:
            service = self.service_time_ns(size_bytes)
            remainder_median = max(1, self.median_ns - service)
            pool = self._latency_pools[size_bytes] = SamplePool(
                self._rng.lognormal_pool(remainder_median, self.sigma, DEFAULT_POOL_SIZE)
            )
        return pool.draw()
