"""RDMA substrate: fabric, dispatch queues, completions, slabs, agents."""

from repro.rdma.agent import HostAgent, RemoteAgent, RemotePageLostError
from repro.rdma.completion import CompletionQueue, InflightKind, InflightRead
from repro.rdma.network import RdmaFabric
from repro.rdma.qp import DispatchQueue, QueueStats, Submission
from repro.rdma.slab import PageLocation, Slab, SlabAllocator

__all__ = [
    "CompletionQueue",
    "DispatchQueue",
    "InflightKind",
    "InflightRead",
    "HostAgent",
    "PageLocation",
    "QueueStats",
    "RdmaFabric",
    "RemoteAgent",
    "RemotePageLostError",
    "Slab",
    "SlabAllocator",
    "Submission",
]
