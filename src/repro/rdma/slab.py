"""Slab-granular remote memory mapping.

Following §4.4, the remote memory pool is carved into fixed-size slabs.
A host agent maps slabs — not individual pages — onto remote machines,
choosing the machine for each new slab with the power-of-two-choices
rule (§4.5) to keep memory usage balanced.  Within a slab, page slots
are handed out in the order pages are first evicted, which reproduces
the paper's observation that pages aged out together land at nearby
remote addresses.

Slots are *reclaimed*: when a page faults back in and its backing copy
is dropped (:meth:`SlabAllocator.release`), the slot returns to its
slab's free list and is reused before any new slab is opened.  Without
this, every evict/fault-in cycle would consume a fresh slot and a long
run would leak remote capacity one slab at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Slab", "PageLocation", "SlabAllocator"]


@dataclass(frozen=True, slots=True)
class PageLocation:
    """Where one page lives remotely: a slab and a slot within it."""

    slab_id: int
    slot: int

    def global_offset(self, slab_capacity: int) -> int:
        """Page-granular offset in the host's remote address space."""
        return self.slab_id * slab_capacity + self.slot


@dataclass(slots=True)
class Slab:
    """One fixed-size chunk of remote memory mapped on one machine."""

    slab_id: int
    machine_id: int
    capacity_pages: int
    used_slots: int = 0
    replica_machine_id: int | None = None
    page_slots: dict[object, int] = field(default_factory=dict)
    slot_pages: list[object] = field(default_factory=list)
    free_slots: list[int] = field(default_factory=list)

    @property
    def is_full(self) -> bool:
        return self.used_slots >= self.capacity_pages

    @property
    def has_free_slot(self) -> bool:
        return bool(self.free_slots)

    def allocate_slot(self, key: object) -> int:
        if key in self.page_slots:
            raise ValueError(f"page {key!r} already has a slot in slab {self.slab_id}")
        if self.free_slots:
            slot = self.free_slots.pop()
            self.slot_pages[slot] = key
        elif len(self.slot_pages) < self.capacity_pages:
            slot = len(self.slot_pages)
            self.slot_pages.append(key)
        else:
            raise RuntimeError(f"slab {self.slab_id} is full")
        self.page_slots[key] = slot
        self.used_slots += 1
        return slot

    def free_slot(self, key: object) -> int:
        """Return *key*'s slot to this slab's free list."""
        slot = self.page_slots.pop(key)
        self.slot_pages[slot] = None
        self.free_slots.append(slot)
        self.used_slots -= 1
        return slot

    def key_at(self, slot: int) -> object | None:
        if 0 <= slot < len(self.slot_pages):
            return self.slot_pages[slot]
        return None


class SlabAllocator:
    """Tracks the open slab and page→location mapping for one host."""

    def __init__(self, slab_capacity_pages: int) -> None:
        if slab_capacity_pages <= 0:
            raise ValueError(
                f"slab capacity must be positive, got {slab_capacity_pages}"
            )
        self.slab_capacity_pages = slab_capacity_pages
        self.slabs: dict[int, Slab] = {}
        self._locations: dict[object, PageLocation] = {}
        self._open_slab: Slab | None = None
        self._next_slab_id = 0
        #: Slab ids with at least one reclaimed slot, in the order the
        #: first slot came back (dict-as-ordered-set, for determinism).
        self._reusable: dict[int, None] = {}
        self.released_slots = 0
        self.reused_slots = 0

    def location_of(self, key: object) -> PageLocation | None:
        return self._locations.get(key)

    @property
    def mapped_pages(self) -> int:
        return len(self._locations)

    def needs_new_slab(self) -> bool:
        if self._reusable:
            return False
        return self._open_slab is None or self._open_slab.is_full

    def open_slab(self, machine_id: int, replica_machine_id: int | None) -> Slab:
        """Create a new open slab mapped on *machine_id*."""
        slab = Slab(
            slab_id=self._next_slab_id,
            machine_id=machine_id,
            capacity_pages=self.slab_capacity_pages,
            replica_machine_id=replica_machine_id,
        )
        self._next_slab_id += 1
        self.slabs[slab.slab_id] = slab
        self._open_slab = slab
        return slab

    def place_page(self, key: object) -> PageLocation:
        """Assign *key* a slot, reusing reclaimed slots before the open slab."""
        existing = self._locations.get(key)
        if existing is not None:
            return existing
        while self._reusable:
            slab_id = next(iter(self._reusable))
            slab = self.slabs[slab_id]
            if not slab.free_slots:
                del self._reusable[slab_id]
                continue
            slot = slab.allocate_slot(key)
            if not slab.free_slots:
                del self._reusable[slab_id]
            location = PageLocation(slab_id=slab_id, slot=slot)
            self._locations[key] = location
            self.reused_slots += 1
            return location
        if self._open_slab is None or self._open_slab.is_full:
            raise RuntimeError("no open slab; call open_slab() first")
        slot = self._open_slab.allocate_slot(key)
        location = PageLocation(slab_id=self._open_slab.slab_id, slot=slot)
        self._locations[key] = location
        return location

    def release(self, key: object) -> bool:
        """Reclaim *key*'s slot (the page faulted back in).

        The slot is queued for reuse by the next placement, so steady
        evict/fault-in churn recycles remote capacity instead of
        opening slab after slab.  Returns True when a slot was freed.
        """
        location = self._locations.pop(key, None)
        if location is None:
            return False
        slab = self.slabs[location.slab_id]
        slab.free_slot(key)
        self._reusable.setdefault(slab.slab_id)
        self.released_slots += 1
        return True

    def keys_in_slab(self, slab_id: int) -> list[object]:
        """Pages currently occupying slots of one slab (remap/recovery)."""
        return list(self.slabs[slab_id].page_slots)

    def slab_of(self, location: PageLocation) -> Slab:
        return self.slabs[location.slab_id]

    def key_at(self, global_offset: int) -> object | None:
        """Reverse lookup: page occupying a global page offset, if any."""
        if global_offset < 0:
            return None
        slab = self.slabs.get(global_offset // self.slab_capacity_pages)
        if slab is None:
            return None
        return slab.key_at(global_offset % self.slab_capacity_pages)

    def slabs_on_machine(self, machine_id: int) -> list[Slab]:
        return [
            slab
            for slab in self.slabs.values()
            if slab.machine_id == machine_id or slab.replica_machine_id == machine_id
        ]
