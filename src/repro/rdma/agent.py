"""Host and remote agents for the remote I/O interface (§4.4–4.5).

The *host agent* exposes ``read_page`` / ``write_page`` to the data
path.  It maps slabs across remote machines with power-of-two-choices
placement, keeps one in-memory replica per slab (the paper's default
fault-tolerance policy), maintains a per-core RDMA dispatch queue, and
fails over reads to the replica when a remote machine dies.

The *remote agent* is the memory donor on the far machine: it only
accounts capacity and liveness — page contents are never materialized
by the simulator.
"""

from __future__ import annotations

from repro.obs.trace import NULL_TRACER
from repro.rdma.network import RdmaFabric
from repro.rdma.qp import DispatchQueue, Submission
from repro.rdma.slab import PageLocation, Slab, SlabAllocator
from repro.sim.rng import SimRandom

__all__ = ["RemoteAgent", "HostAgent", "RemotePageLostError"]


class RemotePageLostError(RuntimeError):
    """A page's slab and its replica are both on dead machines."""


class RemoteAgent:
    """Memory donor on a remote machine."""

    def __init__(self, machine_id: int, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_pages}")
        self.machine_id = machine_id
        self.capacity_pages = capacity_pages
        self.reserved_pages = 0
        self.alive = True

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.reserved_pages

    def can_host_slab(self, slab_pages: int) -> bool:
        return self.alive and self.free_pages >= slab_pages

    def reserve_slab(self, slab_pages: int) -> None:
        if not self.can_host_slab(slab_pages):
            raise RuntimeError(
                f"machine {self.machine_id} cannot host a {slab_pages}-page slab"
            )
        self.reserved_pages += slab_pages

    def release_slab(self, slab_pages: int) -> None:
        if slab_pages > self.reserved_pages:
            raise ValueError("releasing more pages than reserved")
        self.reserved_pages -= slab_pages

    def fail(self) -> None:
        """Simulate the machine crashing; its slabs become unreadable."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True


class HostAgent:
    """The local machine's gateway to the disaggregated memory pool."""

    def __init__(
        self,
        fabric: RdmaFabric,
        remote_agents: list[RemoteAgent],
        rng: SimRandom,
        n_cores: int = 8,
        slab_capacity_pages: int = 4096,
        replication: bool = True,
    ) -> None:
        if not remote_agents:
            raise ValueError("need at least one remote agent")
        if replication and len(remote_agents) < 2:
            raise ValueError("replication requires at least two remote machines")
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        self.fabric = fabric
        self.remote_agents = {agent.machine_id: agent for agent in remote_agents}
        self._rng = rng
        #: Trace sink; the owning Machine re-points this at its own
        #: collector right after construction (see repro.obs.trace).
        self.tracer = NULL_TRACER
        self.queues = [DispatchQueue(core) for core in range(n_cores)]
        self.allocator = SlabAllocator(slab_capacity_pages)
        self.replication = replication
        self.reads = 0
        self.writes = 0
        self.failovers = 0

    # -- placement ---------------------------------------------------------
    def _placement_load(self, agent: RemoteAgent) -> float:
        """Load signal power-of-two choices minimizes (lower is better).

        The flat host agent only sees reserved capacity; the cluster
        agent overrides this with *live* server load (utilization plus
        queue-pair backlog), which is the §4.5 feedback loop that keeps
        a hot server from accumulating new slabs.
        """
        return -agent.free_pages

    def _pick_machine(self, exclude: set[int]) -> RemoteAgent:
        """Power-of-two-choices among alive machines with slab headroom."""
        slab_pages = self.allocator.slab_capacity_pages
        candidates = [
            agent
            for agent in self.remote_agents.values()
            if agent.machine_id not in exclude and agent.can_host_slab(slab_pages)
        ]
        if not candidates:
            raise RemotePageLostError("no remote machine can host a new slab")
        if len(candidates) == 1:
            return candidates[0]
        first, second = self._rng.sample(candidates, 2)
        return (
            first
            if self._placement_load(first) <= self._placement_load(second)
            else second
        )

    def _ensure_open_slab(self) -> None:
        if not self.allocator.needs_new_slab():
            return
        slab_pages = self.allocator.slab_capacity_pages
        primary = self._pick_machine(exclude=set())
        replica_id: int | None = None
        if self.replication:
            replica = self._pick_machine(exclude={primary.machine_id})
            replica.reserve_slab(slab_pages)
            replica_id = replica.machine_id
        primary.reserve_slab(slab_pages)
        self.allocator.open_slab(primary.machine_id, replica_id)

    def place_page(self, key: object) -> PageLocation:
        """Assign a remote slot to *key* (idempotent)."""
        location = self.allocator.location_of(key)
        if location is not None:
            return location
        self._ensure_open_slab()
        return self.allocator.place_page(key)

    # -- data movement -------------------------------------------------------
    def _queue_for(self, core: int) -> DispatchQueue:
        return self.queues[core % len(self.queues)]

    def _readable_machine(self, slab: Slab) -> RemoteAgent:
        primary = self.remote_agents[slab.machine_id]
        if primary.alive:
            return primary
        if slab.replica_machine_id is not None:
            replica = self.remote_agents[slab.replica_machine_id]
            if replica.alive:
                self.failovers += 1
                return replica
        raise RemotePageLostError(
            f"slab {slab.slab_id}: primary machine {slab.machine_id} dead "
            f"and no live replica"
        )

    def resolve_server(self, key: object) -> int | None:
        """Pre-dispatch resolution of *key*'s serving machine.

        The flat host agent resolves internally (all machines share one
        latency model), so it returns None and the data path skips the
        lookup; the cluster agent returns the live server so dispatch
        can charge that server's queue pair.
        """
        return None

    def release_page(self, key: object) -> bool:
        """The page faulted back in; reclaim its remote slot for reuse."""
        return self.allocator.release(key)

    def read_page(
        self, key: object, now: int, core: int = 0, server: int | None = None
    ) -> Submission:
        """One-sided RDMA read of *key*'s page; returns queue timings.

        *server* is an optional pre-resolved target (see
        :meth:`resolve_server`); the flat agent ignores it.
        """
        location = self.place_page(key)
        slab = self.allocator.slab_of(location)
        self._readable_machine(slab)  # raises if the page is lost
        self.reads += 1
        return self._queue_for(core).submit(
            now,
            service_ns=self.fabric.service_time_ns(),
            fabric_ns=self.fabric.fabric_latency_ns(),
        )

    def write_page(
        self, key: object, now: int, core: int = 0, server: int | None = None
    ) -> Submission:
        """RDMA write of *key*'s page to its slab (and replica if any)."""
        location = self.place_page(key)
        slab = self.allocator.slab_of(location)
        self.writes += 1
        queue = self._queue_for(core)
        submission = queue.submit(
            now,
            service_ns=self.fabric.service_time_ns(),
            fabric_ns=self.fabric.fabric_latency_ns(),
        )
        if self.replication and slab.replica_machine_id is not None:
            replica_sub = queue.submit(
                submission.submitted,
                service_ns=self.fabric.service_time_ns(),
                fabric_ns=self.fabric.fabric_latency_ns(),
            )
            if replica_sub.completed > submission.completed:
                submission = Submission(
                    submitted=submission.submitted,
                    started=submission.started,
                    completed=replica_sub.completed,
                )
        return submission

    # -- introspection -------------------------------------------------------
    def machine_loads(self) -> dict[int, int]:
        """Reserved pages per remote machine (for balance tests)."""
        return {
            machine_id: agent.reserved_pages
            for machine_id, agent in self.remote_agents.items()
        }

    def dispatch_stats(self) -> dict[int, dict]:
        """Per-core dispatch-queue accounting (cores that saw traffic).

        The host-side queue-depth view that complements the fault
        pipeline's completion-queue counters: operations dispatched,
        queueing delays, and the peak backlog a submission found ahead
        of it.
        """
        return {
            queue.core: {
                "ops": queue.stats.operations,
                "mean_delay_ns": round(queue.stats.mean_queueing_delay, 1),
                "max_delay_ns": queue.stats.max_queueing_delay,
                "peak_backlog_ns": queue.stats.peak_backlog_ns,
            }
            for queue in self.queues
            if queue.stats.operations
        }
