"""Per-core RDMA dispatch queues.

Leap's remote I/O interface (§4.4) stages remote reads and writes on a
per-CPU-core dispatch queue in front of the RDMA NIC.  The simulator
models each queue as a single server: an operation submitted at time
``t`` starts at ``max(t, busy_until)``, occupies the queue for its
*service time* (wire occupancy plus per-op driver work), and completes
after the additional end-to-end *fabric latency*.  Queueing delay under
load — the effect that makes tail latency blow up when many processes
or write-backs share a queue — falls out of ``busy_until``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DispatchQueue", "QueueStats", "Submission"]


@dataclass(frozen=True, slots=True)
class Submission:
    """Timing of one operation through a dispatch queue."""

    submitted: int
    started: int
    completed: int

    @property
    def queueing_delay(self) -> int:
        return self.started - self.submitted

    @property
    def total_latency(self) -> int:
        return self.completed - self.submitted


class QueueStats:
    """Aggregate counters for one dispatch queue."""

    def __init__(self) -> None:
        self.operations = 0
        self.total_queueing_delay = 0
        self.max_queueing_delay = 0
        #: Largest backlog (ns of queued service time) any submission
        #: found in front of it — the queue-depth signal the fault
        #: pipeline's completion queues summarize per core.
        self.peak_backlog_ns = 0

    def record(self, submission: Submission) -> None:
        self.operations += 1
        self.total_queueing_delay += submission.queueing_delay
        self.max_queueing_delay = max(
            self.max_queueing_delay, submission.queueing_delay
        )

    @property
    def mean_queueing_delay(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.total_queueing_delay / self.operations


class DispatchQueue:
    """Single-server queue with deterministic service order."""

    def __init__(self, core: int) -> None:
        self.core = core
        self.busy_until = 0
        self.stats = QueueStats()

    def submit(self, now: int, service_ns: int, fabric_ns: int) -> Submission:
        """Run one operation through the queue.

        ``service_ns`` is how long the op occupies the queue (serialized
        with other ops); ``fabric_ns`` is the pipelined remainder of the
        end-to-end latency (flight time, remote DMA) that does *not*
        block the next submission.
        """
        if service_ns < 0 or fabric_ns < 0:
            raise ValueError("service and fabric times must be non-negative")
        backlog = self.busy_until - now
        if backlog > self.stats.peak_backlog_ns:
            self.stats.peak_backlog_ns = backlog
        started = max(now, self.busy_until)
        self.busy_until = started + service_ns
        submission = Submission(
            submitted=now,
            started=started,
            completed=started + service_ns + fabric_ns,
        )
        self.stats.record(submission)
        return submission

    def depth_at(self, now: int) -> int:
        """Rough queue depth proxy: outstanding busy time in ops.

        Used only for load-balancing decisions, where a relative signal
        is sufficient.
        """
        backlog = max(0, self.busy_until - now)
        return backlog
