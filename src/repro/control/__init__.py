"""Online control plane: closed-loop runtime policy adaptation.

Leap's contribution is *online adaptation inside one prefetcher* —
majority-trend detection and a hit-driven window that react to the
access stream as it happens.  This package closes the same loop one
level up, across policies and tenants, at a configurable epoch of
simulated time:

* :mod:`repro.control.telemetry` snapshots per-tenant sliding-window
  signals (hit rate, major-fault pressure, p95 fault latency) and
  global prefetch-quality signals (coverage, pollution) every epoch;
* :mod:`repro.control.governor` scores the running prefetcher policy
  per process on those windows and hot-swaps it (leap / readahead /
  stride / next-n-line / ghb) behind the ordinary
  :class:`~repro.prefetchers.base.Prefetcher` interface, with
  hysteresis so one noisy window cannot thrash policies — the
  cross-policy analogue of
  :class:`~repro.core.prefetch_window.PrefetchWindow`'s smooth shrink;
* :mod:`repro.control.balancer` reallocates local-memory limits across
  tenants mid-run through ``Machine.set_memory_limit``, shrinking the
  tenant whose marginal page buys the least and growing the one under
  the highest major-fault pressure, subject to per-tenant floors and
  ceilings;
* :mod:`repro.control.plane` wires all three onto the scheduler's
  epoch hook and reduces what happened to a JSON-shaped report (epoch
  time series, policy decisions, limit trajectories).

Everything is driven by simulated time and deterministic signals, so a
governed run is exactly as reproducible as a static one.
"""

from repro.control.balancer import BalancerMove, TenantMemoryBalancer
from repro.control.governor import GovernorDecision, PolicyGovernor, SwappablePrefetcher
from repro.control.plane import ControlPlane
from repro.control.spec import BalancerSpec, ControlSpec, GovernorSpec
from repro.control.telemetry import EpochSample, TelemetrySampler, TenantSignals

__all__ = [
    "BalancerMove",
    "BalancerSpec",
    "ControlPlane",
    "ControlSpec",
    "EpochSample",
    "GovernorDecision",
    "GovernorSpec",
    "PolicyGovernor",
    "SwappablePrefetcher",
    "TelemetrySampler",
    "TenantMemoryBalancer",
    "TenantSignals",
]
