"""Tenant memory balancing: move local-memory budget to its best use.

A static per-tenant memory split is wrong the moment tenants' phases
diverge: one tenant's working set goes cold (its marginal page buys
almost nothing) while another thrashes (every extra page would absorb
a major fault).  Each epoch the balancer ranks tenants by
**major-fault pressure** — window major faults per budgeted page, the
marginal-benefit signal: high pressure means an extra page is likely
to absorb a fault, near-zero pressure means the tenant would not miss
a donated page — and transfers one step of budget from the
lowest-pressure tenant to the highest-pressure one through
``Machine.set_memory_limit`` (the same mid-run resize path scenario
limit schedules use, so shrinking reclaims immediately).

Guard rails come from the :class:`~repro.control.spec.BalancerSpec`:
per-tenant floors and ceilings (fractions of each tenant's own working
set), a step size relative to the donor's current limit, and a
``pressure_gap`` hysteresis so two tenants with comparable pressure do
not trade the same pages back and forth epoch after epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.spec import BalancerSpec
from repro.control.telemetry import EpochSample

__all__ = ["BalancerMove", "TenantMemoryBalancer"]


@dataclass(frozen=True, slots=True)
class BalancerMove:
    """One epoch's budget transfer between two tenants."""

    epoch: int
    at_ns: int
    donor_pid: int
    receiver_pid: int
    pages: int
    donor_limit: int  # after the move
    receiver_limit: int  # after the move
    donor_pressure: float
    receiver_pressure: float


class TenantMemoryBalancer:
    """Reallocate cgroup limits across tenants, one step per epoch."""

    def __init__(
        self,
        machine,
        spec: BalancerSpec,
        wss_pages: dict[int, int],
    ) -> None:
        self.machine = machine
        self.spec = spec
        #: Hard bounds derived from each tenant's own footprint; a
        #: tenant is never starved below its floor nor grown past the
        #: point where extra budget cannot hold more of its pages.
        self.floors = {
            pid: max(2, int(wss * spec.floor_fraction))
            for pid, wss in wss_pages.items()
        }
        self.ceilings = {
            pid: max(self.floors[pid] + 1, int(wss * spec.ceiling_fraction))
            for pid, wss in wss_pages.items()
        }
        self.moves: list[BalancerMove] = []

    def pressure(self, sample: EpochSample, pid: int) -> float:
        signals = sample.tenants[pid]
        return signals.major_faults / max(1, signals.limit_pages)

    def on_epoch(self, sample: EpochSample) -> list[BalancerMove]:
        """Transfer one budget step if the pressure imbalance warrants."""
        pids = [pid for pid in sorted(sample.tenants) if pid in self.floors]
        if len(pids) < 2:
            return []
        pressures = {pid: self.pressure(sample, pid) for pid in pids}
        # Only tenants that can actually move pages are candidates: a
        # floored donor (or ceilinged receiver) must not mask the
        # next-best candidate and stall rebalancing for the whole run.
        receivers = [
            pid
            for pid in pids
            if sample.tenants[pid].limit_pages < self.ceilings[pid]
        ]
        if not receivers:
            return []
        receiver = max(receivers, key=lambda pid: (pressures[pid], -pid))
        donors = [
            pid
            for pid in pids
            if pid != receiver and sample.tenants[pid].limit_pages > self.floors[pid]
        ]
        if not donors:
            return []
        donor = min(donors, key=lambda pid: (pressures[pid], pid))
        if pressures[receiver] <= (pressures[donor] + 1e-12) * (
            1.0 + self.spec.pressure_gap
        ):
            return []
        donor_limit = sample.tenants[donor].limit_pages
        receiver_limit = sample.tenants[receiver].limit_pages
        step = max(1, int(donor_limit * self.spec.step_fraction))
        step = min(
            step,
            donor_limit - self.floors[donor],
            self.ceilings[receiver] - receiver_limit,
        )
        if step <= 0:
            return []
        self.machine.set_memory_limit(donor, donor_limit - step, sample.at_ns)
        self.machine.set_memory_limit(receiver, receiver_limit + step, sample.at_ns)
        move = BalancerMove(
            epoch=sample.epoch,
            at_ns=sample.at_ns,
            donor_pid=donor,
            receiver_pid=receiver,
            pages=step,
            donor_limit=donor_limit - step,
            receiver_limit=receiver_limit + step,
            donor_pressure=pressures[donor],
            receiver_pressure=pressures[receiver],
        )
        self.moves.append(move)
        return [move]
