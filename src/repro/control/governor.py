"""Adaptive prefetcher governance: score, probe, and hot-swap policies.

No single prefetcher wins every regime (the paper's Table 1 is a grid
of trade-offs): majority-trend detection shrugs off noise but has no
temporal memory, delta-correlation (GHB) replays long irregular loops
but breaks under noise, sequential readahead is free until the pattern
is not sequential.  A workload phase shift therefore strands any
statically chosen policy.  :class:`PolicyGovernor` closes that gap
online: each epoch it scores the policy a process is *currently*
running on by the window's prefetch hit rate, and when the smoothed
score collapses it probes the unexplored candidates (in declared
order) or switches to the best already-explored alternative.

Hysteresis keeps one noisy window from thrashing policies — the
cross-policy analogue of :class:`~repro.core.prefetch_window.\
PrefetchWindow`'s smooth shrink: a policy runs for at least
``min_dwell_epochs`` before any verdict, a challenger must beat the
incumbent by ``score_margin``, and windows with fewer than
``min_faults`` faults are too quiet to score at all.

:class:`SwappablePrefetcher` is the mechanism under the policy: a
router implementing the ordinary :class:`~repro.prefetchers.base.\
Prefetcher` interface that keeps one instance per candidate policy and
routes each process's ``candidates`` calls to its active policy.
*Every* candidate observes every fault (``on_fault`` fans out), so a
policy swapped in mid-run starts with a warm model rather than a cold
one — the same reason Leap's shard migration merges history instead of
restarting detection.  Swapping touches no cache state: pages already
prefetched stay in the :class:`~repro.mem.page_cache.PageCache` and
still serve hits, and each hit's feedback is routed to the policy that
*issued* the page, not whichever policy is active when it lands.
(The window hit rate the governor scores on still includes those
inherited hits for the first post-swap epochs — an unavoidable
property of window telemetry that ``min_dwell_epochs`` exists to
average out.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.spec import GovernorSpec
from repro.control.telemetry import EpochSample
from repro.mem.page import PageKey
from repro.prefetchers.base import Prefetcher

__all__ = ["GovernorDecision", "PolicyGovernor", "SwappablePrefetcher"]


class SwappablePrefetcher(Prefetcher):
    """Route each process's prefetching to its active policy."""

    name = "governed"

    def __init__(self, machine, policies: tuple[str, ...], default: str) -> None:
        if default not in policies:
            raise ValueError(f"default policy {default!r} not in {policies}")
        self.policies = tuple(policies)
        self.default = default
        #: One shared instance per candidate policy, sized from the
        #: machine's config (Leap's tracker shards per pid internally;
        #: the offset baselines are global by design).
        self.instances: dict[str, Prefetcher] = {
            policy: machine.build_prefetcher(policy) for policy in policies
        }
        self._active: dict[int, str] = {}
        self._cores: dict[int, int] = {}
        #: Which policy proposed each candidate, so a hit's feedback
        #: reaches the policy that earned it even after a swap (a
        #: window-growth loop fed with another policy's hits would give
        #: every freshly probed policy an unearned head start).
        self._issuer: dict[PageKey, str] = {}
        self.swaps = 0

    def policy_of(self, pid: int) -> str:
        return self._active.get(pid, self.default)

    def set_policy(self, pid: int, policy: str) -> bool:
        """Hot-swap *pid* onto *policy*; returns True when it changed."""
        if policy not in self.instances:
            raise ValueError(f"unknown policy {policy!r} (have {self.policies})")
        if self.policy_of(pid) == policy:
            return False
        self._active[pid] = policy
        self.swaps += 1
        return True

    # -- Prefetcher interface ----------------------------------------------
    def on_fault(self, key: PageKey, now: int, cache_hit: bool) -> None:
        # Fan out: inactive policies keep observing so they are warm
        # when the governor probes them.
        for instance in self.instances.values():
            instance.on_fault(key, now, cache_hit)

    def candidates(self, key: PageKey, now: int) -> list[PageKey]:
        policy = self.policy_of(key[0])
        picks = self.instances[policy].candidates(key, now)
        for pick in picks:
            self._issuer[pick] = policy
        return picks

    def on_prefetch_hit(self, key: PageKey, now: int) -> None:
        issuer = self._issuer.pop(key, None) or self.policy_of(key[0])
        self.instances[issuer].on_prefetch_hit(key, now)

    def on_process_placed(self, pid: int, core: int) -> None:
        self._cores[pid] = core
        for instance in self.instances.values():
            instance.on_process_placed(pid, core)

    def on_process_migrated(self, pid: int, old_core: int, new_core: int) -> None:
        self._cores[pid] = new_core
        for instance in self.instances.values():
            instance.on_process_migrated(pid, old_core, new_core)

    def reset(self) -> None:
        self._issuer.clear()
        for instance in self.instances.values():
            instance.reset()


@dataclass(frozen=True, slots=True)
class GovernorDecision:
    """One policy swap, with the evidence that triggered it."""

    epoch: int
    at_ns: int
    pid: int
    from_policy: str
    to_policy: str
    reason: str  # "probe" | "exploit"
    from_score: float
    to_score: float | None  # None when the target is unexplored


class _PidState:
    __slots__ = ("scores", "scored_at", "dwell")

    def __init__(self) -> None:
        #: Smoothed (EWMA) hit-rate score per policy; a policy appears
        #: only once it has actually run for this pid.
        self.scores: dict[str, float] = {}
        #: Epoch each policy's score was last refreshed (staleness).
        self.scored_at: dict[str, int] = {}
        self.dwell = 0


class PolicyGovernor:
    """Per-process policy selection over epoch telemetry."""

    def __init__(self, swappable: SwappablePrefetcher, spec: GovernorSpec) -> None:
        self.swappable = swappable
        self.spec = spec
        self._states: dict[int, _PidState] = {}
        self.decisions: list[GovernorDecision] = []

    def scores(self, pid: int) -> dict[str, float]:
        return dict(self._states[pid].scores) if pid in self._states else {}

    def on_epoch(self, sample: EpochSample) -> list[GovernorDecision]:
        """Score the active policies; swap where the evidence demands."""
        spec = self.spec
        made: list[GovernorDecision] = []
        for pid in sorted(sample.tenants):
            signals = sample.tenants[pid]
            state = self._states.setdefault(pid, _PidState())
            current = self.swappable.policy_of(pid)
            state.dwell += 1
            if signals.faults < spec.min_faults:
                # Too quiet to judge anyone: dwell accrues, scores hold.
                continue
            score = signals.hit_rate
            previous = state.scores.get(current)
            state.scores[current] = (
                score
                if previous is None
                else previous + spec.ewma_alpha * (score - previous)
            )
            state.scored_at[current] = sample.epoch
            if state.dwell < spec.min_dwell_epochs:
                continue
            current_score = state.scores[current]
            # A score that has not been refreshed for stale_epochs is
            # evidence about a regime that may no longer exist: the
            # policy is *forgotten* — dropped back into the unexplored
            # pool, out of exploit consideration, and its EWMA deleted
            # so a re-audition starts from fresh evidence instead of
            # blending the new regime's scores into the old regime's.
            for policy in list(state.scores):
                if policy == current:
                    continue
                if sample.epoch - state.scored_at[policy] > spec.stale_epochs:
                    del state.scores[policy]
                    del state.scored_at[policy]
            fresh = dict(state.scores)
            unexplored = [
                policy for policy in self.swappable.policies if policy not in fresh
            ]
            decision: GovernorDecision | None = None
            if current_score < spec.probe_score and unexplored:
                decision = GovernorDecision(
                    epoch=sample.epoch,
                    at_ns=sample.at_ns,
                    pid=pid,
                    from_policy=current,
                    to_policy=unexplored[0],
                    reason="probe",
                    from_score=current_score,
                    to_score=None,
                )
            else:
                challengers = {
                    policy: value
                    for policy, value in fresh.items()
                    if policy != current
                }
                if challengers:
                    # Deterministic argmax: best score, then probe order.
                    best = max(
                        challengers,
                        key=lambda policy: (
                            challengers[policy],
                            -self.swappable.policies.index(policy),
                        ),
                    )
                    if challengers[best] > current_score + spec.score_margin:
                        decision = GovernorDecision(
                            epoch=sample.epoch,
                            at_ns=sample.at_ns,
                            pid=pid,
                            from_policy=current,
                            to_policy=best,
                            reason="exploit",
                            from_score=current_score,
                            to_score=challengers[best],
                        )
            if decision is None:
                continue
            self.swappable.set_policy(pid, decision.to_policy)
            state.dwell = 0
            self.decisions.append(decision)
            made.append(decision)
        return made
