"""Wire sampler, governor, and balancer onto a machine's epoch hook.

:class:`ControlPlane` is the object a run actually holds: built from a
machine plus a :class:`~repro.control.spec.ControlSpec`, it installs
the governed prefetcher router (when a governor is configured), exposes
itself as the scheduler's ``on_epoch`` callback, and keeps the full
decision record — an epoch-by-epoch telemetry time series, every policy
swap, every rebalance, and the per-tenant limit trajectories — as a
JSON-shaped report for run payloads and the ``repro control`` CLI.

Epoch timestamps in the report are relative to the measured phase
(``at_ms = epoch x epoch_ms``), so the same scenario reports the same
trajectory at any warmup length, and a governed run's payload is
byte-identical across repeated runs at a fixed seed.
"""

from __future__ import annotations

from repro.control.balancer import TenantMemoryBalancer
from repro.control.governor import PolicyGovernor, SwappablePrefetcher
from repro.control.spec import ControlSpec
from repro.control.telemetry import TelemetrySampler
from repro.obs.names import CONTROL_REBALANCE, CONTROL_SWAP, TRACK_MACHINE
from repro.sim.units import ms

__all__ = ["ControlPlane"]


class ControlPlane:
    """One scenario run's control loop and its decision record."""

    def __init__(
        self,
        machine,
        spec: ControlSpec,
        names: dict[int, str],
        wss_pages: dict[int, int],
        default_policy: str = "leap",
    ) -> None:
        self.machine = machine
        self.spec = spec
        self.names = dict(names)
        self.epoch_ns = ms(spec.epoch_ms)
        self.sampler = TelemetrySampler(machine)
        self.governor: PolicyGovernor | None = None
        self.swappable: SwappablePrefetcher | None = None
        self.balancer: TenantMemoryBalancer | None = None
        if spec.governor is not None:
            policies = spec.governor.policies
            if default_policy not in policies:
                # The scenario's static choice is always a candidate —
                # the governor must be able to keep it.
                policies = (default_policy, *policies)
            self.swappable = SwappablePrefetcher(
                machine, policies, default=default_policy
            )
            machine.install_prefetcher(self.swappable)
            self.governor = PolicyGovernor(self.swappable, spec.governor)
        if spec.balancer is not None:
            self.balancer = TenantMemoryBalancer(machine, spec.balancer, wss_pages)
        self.epoch_rows: list[dict] = []

    # -- the epoch hook -----------------------------------------------------
    def __call__(self, at_ns: int, scheduler) -> None:
        """One control epoch: sample, then govern and rebalance."""
        sample = self.sampler.sample(at_ns, scheduler.drivers)
        tracer = self.machine.tracer
        if self.governor is not None:
            seen = len(self.governor.decisions)
            self.governor.on_epoch(sample)
            if tracer.enabled:
                for decision in self.governor.decisions[seen:]:
                    tracer.instant(CONTROL_SWAP, TRACK_MACHINE, at_ns, decision.pid)
        if self.balancer is not None:
            seen = len(self.balancer.moves)
            self.balancer.on_epoch(sample)
            if tracer.enabled:
                for move in self.balancer.moves[seen:]:
                    tracer.instant(
                        CONTROL_REBALANCE, TRACK_MACHINE, at_ns, move.pages
                    )
        at_ms = round(sample.epoch * self.spec.epoch_ms, 6)
        tenants = {}
        for pid in sorted(sample.tenants):
            signals = sample.tenants[pid]
            row = {
                "core": signals.core,
                "accesses": signals.accesses,
                "hits": signals.hits,
                "major_faults": signals.major_faults,
                "hit_rate": round(signals.hit_rate, 4),
                "p95_us": round(signals.p95_us, 3),
                "limit_pages": signals.limit_pages,
            }
            if self.swappable is not None:
                row["policy"] = self.swappable.policy_of(pid)
            tenants[self._name(pid)] = row
        self.epoch_rows.append(
            {
                "epoch": sample.epoch,
                "at_ms": at_ms,
                "tenants": tenants,
                "hit_rate": round(sample.hit_rate, 4),
                "coverage": round(sample.coverage, 4),
                "pollution_ratio": round(sample.pollution_ratio, 4),
                "prefetch_issued": sample.prefetch_issued,
                "evicted_unused": sample.evicted_unused,
            }
        )

    def _name(self, pid: int) -> str:
        return self.names.get(pid, str(pid))

    def _at_ms(self, epoch: int) -> float:
        return round(epoch * self.spec.epoch_ms, 6)

    # -- reporting ----------------------------------------------------------
    def report(self) -> dict:
        """The run's control record, JSON-shaped and deterministic."""
        report: dict = {
            "epoch_ms": self.spec.epoch_ms,
            "epochs_fired": len(self.epoch_rows),
            "epochs": self.epoch_rows,
            "limits": self._limit_trajectories(),
        }
        if self.governor is not None:
            report["decisions"] = [
                {
                    "epoch": decision.epoch,
                    "at_ms": self._at_ms(decision.epoch),
                    "tenant": self._name(decision.pid),
                    "from": decision.from_policy,
                    "to": decision.to_policy,
                    "reason": decision.reason,
                    "from_score": round(decision.from_score, 4),
                    "to_score": (
                        None
                        if decision.to_score is None
                        else round(decision.to_score, 4)
                    ),
                }
                for decision in self.governor.decisions
            ]
            report["policies"] = {
                self._name(pid): self.swappable.policy_of(pid)
                for pid in sorted(self.names)
            }
            report["swaps"] = self.swappable.swaps
        if self.balancer is not None:
            report["rebalances"] = [
                {
                    "epoch": move.epoch,
                    "at_ms": self._at_ms(move.epoch),
                    "donor": self._name(move.donor_pid),
                    "receiver": self._name(move.receiver_pid),
                    "pages": move.pages,
                    "donor_limit": move.donor_limit,
                    "receiver_limit": move.receiver_limit,
                }
                for move in self.balancer.moves
            ]
        return report

    def _limit_trajectories(self) -> dict[str, list[list]]:
        """Per-tenant ``[at_ms, limit_pages]`` series (changes only)."""
        series: dict[str, list[list]] = {}
        for row in self.epoch_rows:
            for tenant, signals in row["tenants"].items():
                points = series.setdefault(tenant, [])
                if not points or points[-1][1] != signals["limit_pages"]:
                    points.append([row["at_ms"], signals["limit_pages"]])
        return series
