"""Epoch telemetry: sliding-window signals for the control plane.

The governor and balancer must react to *recent* behaviour, not
run-to-date averages — a policy that was right for the first 20 ms of
a run can be arbitrarily wrong for the next 20 ms, and cumulative
ratios bury exactly that shift.  :class:`TelemetrySampler` therefore
keeps the previous epoch's cumulative counters per process and emits
per-epoch *deltas*:

* per tenant (pid, current core): accesses, prefetch-served hits,
  major faults, the window hit rate, the window's p95 fault latency,
  and the tenant's current cgroup limit;
* globally (the machine-wide :class:`~repro.metrics.counters.\
  PrefetchMetrics`): prefetches issued/consumed, pages evicted unused,
  and the derived window coverage and pollution ratio — the same
  pollution definition ``PrefetchMetrics.as_dict`` reports.

Samples are plain data; serialization to run payloads happens in
:mod:`repro.control.plane`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.latency import percentile
from repro.mem.vmm import PREFETCH_HIT_KINDS, AccessKind

__all__ = ["EpochSample", "TelemetrySampler", "TenantSignals"]


@dataclass(frozen=True, slots=True)
class TenantSignals:
    """One tenant's window over one epoch."""

    pid: int
    core: int
    accesses: int
    hits: int
    major_faults: int
    p95_us: float
    limit_pages: int

    @property
    def faults(self) -> int:
        """Backing-store faults in the window (hits + major faults)."""
        return self.hits + self.major_faults

    @property
    def hit_rate(self) -> float:
        """Prefetch-served share of the window's faults (0 when idle)."""
        if self.faults == 0:
            return 0.0
        return self.hits / self.faults


@dataclass(frozen=True, slots=True)
class EpochSample:
    """One control-plane epoch: all tenants plus the global signals."""

    epoch: int
    at_ns: int
    tenants: dict[int, TenantSignals]
    prefetch_issued: int
    prefetch_hits: int
    evicted_unused: int
    faults: int

    @property
    def coverage(self) -> float:
        if self.faults == 0:
            return 0.0
        return self.prefetch_hits / self.faults

    @property
    def pollution_ratio(self) -> float:
        if self.prefetch_issued == 0:
            return 0.0
        return self.evicted_unused / self.prefetch_issued

    @property
    def hit_rate(self) -> float:
        """Aggregate window hit rate across all tenants."""
        hits = sum(signals.hits for signals in self.tenants.values())
        faults = sum(signals.faults for signals in self.tenants.values())
        if faults == 0:
            return 0.0
        return hits / faults


class _DriverCursor:
    """Per-driver cumulative counters as of the previous epoch."""

    __slots__ = ("accesses", "hits", "major_faults", "latency_index")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.major_faults = 0
        self.latency_index = 0


class TelemetrySampler:
    """Snapshot per-epoch windows from the scheduler's driver state."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self._cursors: dict[int, _DriverCursor] = {}
        self._metrics_prev = (0, 0, 0, 0)
        self._epoch = 0
        self.observers: list = []

    def subscribe(self, observer) -> None:
        """Register a per-epoch observer (``on_sample(EpochSample)``).

        Sampling consumes the counter deltas it reports, so a run must
        have exactly one sampler; anything else that wants epoch
        windows (the obs layer's ``MetricsTimeseries``) subscribes
        here and shares each sample instead of double-reading the
        counters.
        """
        self.observers.append(observer)

    def sample(self, at_ns: int, drivers) -> EpochSample:
        """Reduce everything since the last call to one :class:`EpochSample`."""
        self._epoch += 1
        tenants: dict[int, TenantSignals] = {}
        for driver in drivers:
            cursor = self._cursors.setdefault(driver.pid, _DriverCursor())
            hits_total = sum(driver.kind_counts[kind] for kind in PREFETCH_HIT_KINDS)
            major_total = driver.kind_counts[AccessKind.MAJOR_FAULT]
            window_latencies = driver.fault_latencies[cursor.latency_index :]
            process = self.machine.vmm.process(driver.pid)
            tenants[driver.pid] = TenantSignals(
                pid=driver.pid,
                core=process.core,
                accesses=driver.accesses - cursor.accesses,
                hits=hits_total - cursor.hits,
                major_faults=major_total - cursor.major_faults,
                p95_us=(
                    percentile(window_latencies, 95) / 1e3 if window_latencies else 0.0
                ),
                limit_pages=process.cgroup.limit_pages,
            )
            cursor.accesses = driver.accesses
            cursor.hits = hits_total
            cursor.major_faults = major_total
            cursor.latency_index = len(driver.fault_latencies)
        metrics = self.machine.metrics
        current = (
            metrics.prefetch_issued,
            metrics.prefetch_hits,
            metrics.evicted_unused,
            metrics.faults,
        )
        issued, hits, unused, faults = (
            now - prev for now, prev in zip(current, self._metrics_prev)
        )
        self._metrics_prev = current
        sample = EpochSample(
            epoch=self._epoch,
            at_ns=at_ns,
            tenants=tenants,
            prefetch_issued=issued,
            prefetch_hits=hits,
            evicted_unused=unused,
            faults=faults,
        )
        for observer in self.observers:
            observer.on_sample(sample)
        return sample
