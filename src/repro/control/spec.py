"""Declarative configuration for the control plane.

A :class:`ControlSpec` rides on a scenario
(:class:`repro.scenarios.spec.Scenario` carries it in its ``control``
field) and serializes to/from plain dicts like every other spec, so a
governed scenario can live in files, CI configs, and bug reports.  The
spec deliberately mirrors the subsystem split: ``epoch_ms`` paces the
telemetry sampler, :class:`GovernorSpec` tunes policy hot-swapping,
:class:`BalancerSpec` tunes tenant memory rebalancing; leaving either
sub-spec out disables that half of the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["BalancerSpec", "ControlSpec", "GovernorSpec"]


@dataclass(frozen=True, slots=True)
class GovernorSpec:
    """Tuning for the adaptive prefetcher governor.

    ``policies`` is the candidate set in probe order (the scenario's
    chosen prefetcher should be first or at least present — the plane
    inserts it at the front if missing).  ``min_dwell_epochs`` and
    ``score_margin`` are the hysteresis: a policy runs for at least the
    dwell before any swap, and an explored alternative must beat the
    incumbent's smoothed score by the margin to take over.
    ``probe_score`` is the desperation threshold under which unexplored
    policies are tried; ``ewma_alpha`` smooths epoch scores;
    ``min_faults`` is the window size under which an epoch is too quiet
    to score at all.  A score not refreshed for ``stale_epochs`` no
    longer counts as evidence: the policy returns to the unexplored
    pool, so a regime change after its last audition gets it re-probed
    instead of judged on history from a world that no longer exists.
    """

    policies: tuple[str, ...] = ("leap", "readahead", "ghb")
    min_dwell_epochs: int = 3
    score_margin: float = 0.1
    probe_score: float = 0.5
    ewma_alpha: float = 0.5
    min_faults: int = 8
    stale_epochs: int = 12

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("governor needs at least one candidate policy")
        if len(set(self.policies)) != len(self.policies):
            raise ValueError(f"duplicate governor policies: {self.policies}")
        if self.min_dwell_epochs < 1:
            raise ValueError(
                f"min_dwell_epochs must be >= 1, got {self.min_dwell_epochs}"
            )
        if self.score_margin < 0:
            raise ValueError(f"score_margin must be >= 0, got {self.score_margin}")
        if not 0.0 <= self.probe_score <= 1.0:
            raise ValueError(f"probe_score must be in [0, 1], got {self.probe_score}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.min_faults < 1:
            raise ValueError(f"min_faults must be >= 1, got {self.min_faults}")
        if self.stale_epochs < self.min_dwell_epochs:
            raise ValueError(
                f"stale_epochs must be >= min_dwell_epochs, got {self.stale_epochs}"
            )

    def to_dict(self) -> dict:
        return {
            "policies": list(self.policies),
            "min_dwell_epochs": self.min_dwell_epochs,
            "score_margin": self.score_margin,
            "probe_score": self.probe_score,
            "ewma_alpha": self.ewma_alpha,
            "min_faults": self.min_faults,
            "stale_epochs": self.stale_epochs,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "GovernorSpec":
        return cls(
            policies=tuple(data.get("policies", ("leap", "readahead", "ghb"))),
            min_dwell_epochs=int(data.get("min_dwell_epochs", 3)),
            score_margin=float(data.get("score_margin", 0.1)),
            probe_score=float(data.get("probe_score", 0.5)),
            ewma_alpha=float(data.get("ewma_alpha", 0.5)),
            min_faults=int(data.get("min_faults", 8)),
            stale_epochs=int(data.get("stale_epochs", 12)),
        )


@dataclass(frozen=True, slots=True)
class BalancerSpec:
    """Tuning for the tenant memory balancer.

    Each epoch the balancer may transfer one step of local-memory
    budget from the tenant whose marginal page buys the least (lowest
    major-fault pressure per budgeted page) to the tenant under the
    highest pressure.  ``floor_fraction``/``ceiling_fraction`` bound
    every tenant's limit as a fraction of its own working set;
    ``step_fraction`` sizes the transfer relative to the donor's
    current limit; ``pressure_gap`` is the hysteresis — the receiver's
    pressure must exceed the donor's by this relative margin before a
    single page moves.
    """

    step_fraction: float = 0.1
    floor_fraction: float = 0.2
    ceiling_fraction: float = 0.9
    pressure_gap: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.step_fraction <= 0.5:
            raise ValueError(
                f"step_fraction must be in (0, 0.5], got {self.step_fraction}"
            )
        if not 0.0 < self.floor_fraction < 1.0:
            raise ValueError(
                f"floor_fraction must be in (0, 1), got {self.floor_fraction}"
            )
        if not self.floor_fraction < self.ceiling_fraction <= 1.0:
            raise ValueError(
                f"ceiling_fraction must be in (floor_fraction, 1], "
                f"got {self.ceiling_fraction}"
            )
        if self.pressure_gap < 0:
            raise ValueError(f"pressure_gap must be >= 0, got {self.pressure_gap}")

    def to_dict(self) -> dict:
        return {
            "step_fraction": self.step_fraction,
            "floor_fraction": self.floor_fraction,
            "ceiling_fraction": self.ceiling_fraction,
            "pressure_gap": self.pressure_gap,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BalancerSpec":
        return cls(
            step_fraction=float(data.get("step_fraction", 0.1)),
            floor_fraction=float(data.get("floor_fraction", 0.2)),
            ceiling_fraction=float(data.get("ceiling_fraction", 0.9)),
            pressure_gap=float(data.get("pressure_gap", 0.5)),
        )


@dataclass(frozen=True, slots=True)
class ControlSpec:
    """The control-plane half of a scenario declaration."""

    epoch_ms: float = 1.0
    governor: GovernorSpec | None = None
    balancer: BalancerSpec | None = None

    def __post_init__(self) -> None:
        if self.epoch_ms <= 0:
            raise ValueError(f"epoch_ms must be positive, got {self.epoch_ms}")
        if self.governor is None and self.balancer is None:
            raise ValueError(
                "ControlSpec needs a governor, a balancer, or both "
                "(an empty control plane would only add overhead)"
            )

    def to_dict(self) -> dict:
        data: dict = {"epoch_ms": self.epoch_ms}
        if self.governor is not None:
            data["governor"] = self.governor.to_dict()
        if self.balancer is not None:
            data["balancer"] = self.balancer.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ControlSpec":
        governor = data.get("governor")
        balancer = data.get("balancer")
        return cls(
            epoch_ms=float(data.get("epoch_ms", 1.0)),
            governor=None if governor is None else GovernorSpec.from_dict(governor),
            balancer=None if balancer is None else BalancerSpec.from_dict(balancer),
        )
