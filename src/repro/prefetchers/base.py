"""Prefetcher interface.

Prefetchers are consulted by the virtual memory manager on the fault
path:

* :meth:`Prefetcher.on_fault` is called for **every** page fault —
  both faults served from the page cache and full misses — so the
  prefetcher can observe the access stream.
* :meth:`Prefetcher.candidates` is called only on a **full miss**
  (mirroring ``swapin_readahead`` / ``do_prefetch``, which Linux only
  reaches when the swap-cache lookup fails) and returns the page keys
  to read asynchronously.
* :meth:`Prefetcher.on_prefetch_hit` delivers the feedback loop: a page
  this prefetcher brought in was consumed for the first time.

Address spaces differ by design.  Leap tracks per-process *virtual*
page numbers (§4.1); the kernel baselines operate on *backing-store
offsets* of the shared swap area, which is why they can confuse
interleaved processes (§2.3) — exactly the behaviour the paper
exploits.  :class:`OffsetPrefetcher` provides the shared plumbing for
the offset-space baselines.
"""

from __future__ import annotations

import abc

from repro.datapath.backends import IOBackend
from repro.mem.page import PageKey

__all__ = ["Prefetcher", "OffsetPrefetcher"]


class Prefetcher(abc.ABC):
    """Decides which pages to read ahead on a page-fault miss."""

    name: str

    @abc.abstractmethod
    def on_fault(self, key: PageKey, now: int, cache_hit: bool) -> None:
        """Observe one page fault (cache hit or full miss)."""

    @abc.abstractmethod
    def candidates(self, key: PageKey, now: int) -> list[PageKey]:
        """Pages to prefetch after a full miss on *key*."""

    def on_prefetch_hit(self, key: PageKey, now: int) -> None:
        """Feedback: a page prefetched earlier was consumed."""

    def on_process_placed(self, pid: int, core: int) -> None:
        """A process was registered and pinned to *core* (no-op unless
        the prefetcher shards its state per core)."""

    def on_process_migrated(self, pid: int, old_core: int, new_core: int) -> None:
        """The scheduler moved *pid* between cores; per-core sharded
        prefetchers split/merge their tracking state here."""

    def reset(self) -> None:
        """Drop learned state (used between warmup and measurement)."""


class NoopPrefetcher(Prefetcher):
    """Prefetches nothing; the pure demand-paging baseline."""

    name = "none"

    def on_fault(self, key: PageKey, now: int, cache_hit: bool) -> None:
        pass

    def candidates(self, key: PageKey, now: int) -> list[PageKey]:
        return []


class OffsetPrefetcher(Prefetcher):
    """Base for prefetchers that think in backing-store offsets.

    Subclasses implement :meth:`offset_candidates`; this class converts
    the faulting page to its offset and candidate offsets back to the
    pages that own them, dropping offsets that no page occupies.
    """

    def __init__(self, backend: IOBackend) -> None:
        self._backend = backend

    @abc.abstractmethod
    def offset_candidates(self, offset: int, now: int) -> list[int]:
        """Offsets to prefetch, given the faulting page's offset."""

    def on_fault(self, key: PageKey, now: int, cache_hit: bool) -> None:
        offset = self._backend.placement_of(key)
        if offset is not None:
            self.observe_offset(offset, now, cache_hit)

    def observe_offset(self, offset: int, now: int, cache_hit: bool) -> None:
        """Subclass hook for history upkeep; default keeps no history."""

    def candidates(self, key: PageKey, now: int) -> list[PageKey]:
        offset = self._backend.placement_of(key)
        if offset is None:
            # The page has never been evicted, so it has no neighbours
            # in the backing store; the kernel baselines cannot act.
            return []
        found: list[PageKey] = []
        for candidate in self.offset_candidates(offset, now):
            owner = self._backend.key_at_offset(candidate)
            if owner is not None and owner != key:
                found.append(owner)  # type: ignore[arg-type]
        return found
