"""Next-N-Line prefetcher [Mittal, ACM Comput. Surv. 2016].

The simplest spatial prefetcher, borrowed from CPU caches: on a miss at
page ``v``, always bring the next ``N`` pages ``v+1 .. v+N`` of the
same address space.  No adaptivity, no feedback — which is why the
paper finds it adds by far the most pages to the cache (Figure 9a,
4.9M adds) while still missing often: it only ever helps
forward-sequential layouts, and every stride or irregular fault costs
eight wasted remote reads and eight polluted cache slots.
"""

from __future__ import annotations

from repro.mem.page import PageKey
from repro.prefetchers.base import Prefetcher

__all__ = ["NextNLinePrefetcher"]


class NextNLinePrefetcher(Prefetcher):
    """Always prefetch the next N virtual pages after a miss."""

    name = "next-n-line"

    def __init__(self, n_lines: int = 8) -> None:
        if n_lines <= 0:
            raise ValueError(f"n_lines must be positive, got {n_lines}")
        self.n_lines = n_lines

    def on_fault(self, key: PageKey, now: int, cache_hit: bool) -> None:
        pass  # stateless

    def candidates(self, key: PageKey, now: int) -> list[PageKey]:
        pid, vpn = key
        return [(pid, vpn + step) for step in range(1, self.n_lines + 1)]
