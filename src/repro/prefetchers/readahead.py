"""Linux Read-Ahead for swap, as described in §2.3 of the paper.

The kernel keeps an access history of size two.  When the last two
faults hit *consecutive* backing-store offsets, it optimistically reads
the aligned block of offsets containing the faulting page (the swap
cluster — 8 pages by default, matching the paper's microbenchmarks);
otherwise it assumes there is no pattern and halves or stops
prefetching.  Prefetch hit counts feed back into the window size.

Both failure modes the paper calls out fall straight out of this
implementation:

* **over-optimism** — two consecutive faults trigger a full block even
  when nothing else is sequential (cache pollution for PowerGraph and
  VoltDB, Figure 3), and
* **over-pessimism** — any stride > 1 never shows two consecutive
  offsets, so prefetching collapses to nothing and every stride access
  misses (the Stride-10 cliff of Figure 2).
"""

from __future__ import annotations

from repro.datapath.backends import IOBackend
from repro.prefetchers.base import OffsetPrefetcher

__all__ = ["ReadAheadPrefetcher"]


class ReadAheadPrefetcher(OffsetPrefetcher):
    """Aligned-block readahead with a two-fault history."""

    name = "readahead"

    def __init__(self, backend: IOBackend, max_window: int = 8) -> None:
        super().__init__(backend)
        if max_window < 2:
            raise ValueError(f"max_window must be >= 2, got {max_window}")
        self.max_window = max_window
        self._prev_offset: int | None = None
        self._last_offset: int | None = None
        self._window = max_window
        self._hits_since_prefetch = 0

    def reset(self) -> None:
        self._prev_offset = None
        self._last_offset = None
        self._window = self.max_window
        self._hits_since_prefetch = 0

    @property
    def window(self) -> int:
        """Current readahead window (observability; never below 1)."""
        return self._window

    def observe_offset(self, offset: int, now: int, cache_hit: bool) -> None:
        self._prev_offset = self._last_offset
        self._last_offset = offset

    def on_prefetch_hit(self, key, now: int) -> None:
        self._hits_since_prefetch += 1

    def _sequential(self) -> bool:
        if self._prev_offset is None or self._last_offset is None:
            return False
        return abs(self._last_offset - self._prev_offset) == 1

    #: Smallest window that still issues a block; backing off below
    #: this means readahead has stopped until hits or a sequential
    #: pair restore it.
    MIN_WINDOW = 2

    def offset_candidates(self, offset: int, now: int) -> list[int]:
        if self._sequential():
            # Optimistic: open the window fully.
            self._window = self.max_window
        elif self._hits_since_prefetch > 0:
            # The last block was useful even without strict sequences;
            # keep the current window — and if back-off had already
            # collapsed it below the minimum useful block, restore
            # that minimum, otherwise the hit feedback loop can never
            # recover a stopped window (late hits from pages
            # prefetched before the collapse would be ignored).
            self._window = max(self._window, self.MIN_WINDOW)
        else:
            # Pessimistic: no pattern and no hits — back off, bottoming
            # out at a stopped-but-recoverable one-page window (never
            # 0, which the integer halving would otherwise stick at).
            self._window = max(1, self._window // 2)
        self._hits_since_prefetch = 0
        if self._window < self.MIN_WINDOW:
            return []
        start = (offset // self._window) * self._window
        return [
            candidate
            for candidate in range(start, start + self._window)
            if candidate != offset
        ]
