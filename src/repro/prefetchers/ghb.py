"""GHB delta-correlation prefetcher [Nesbit & Smith, IEEE Micro 2005].

Table 1 of the paper compares Leap against GHB-PC: a Global History
Buffer holding the last N accesses as a linked list, indexed by a
correlation key, from which the prefetcher replays the deltas that
historically followed the current context.  The original localizes
streams by program counter; a kernel-level reproduction has no PCs, so
this implementation localizes by *delta pair* (classic "distance
prefetching" — G/DC), which is how GHB is typically built when only
addresses are visible.

The paper's criticism (Table 1 row): high memory overhead (the whole
history buffer plus index) and higher computational cost per miss —
both faithfully present here — in exchange for temporal-correlation
power that simple spatial prefetchers lack.
"""

from __future__ import annotations

from collections import deque

from repro.mem.page import PageKey
from repro.prefetchers.base import Prefetcher

__all__ = ["GHBPrefetcher"]


class GHBPrefetcher(Prefetcher):
    """Global History Buffer with delta-pair correlation (G/DC)."""

    name = "ghb"

    def __init__(
        self,
        buffer_size: int = 256,
        degree: int = 4,
        max_chain: int = 8,
    ) -> None:
        if buffer_size < 4:
            raise ValueError(f"buffer_size must be >= 4, got {buffer_size}")
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.buffer_size = buffer_size
        self.degree = degree
        self.max_chain = max_chain
        #: The global history buffer: recent (pid, vpn) in fault order.
        self._history: deque[PageKey] = deque(maxlen=buffer_size)
        #: Index: delta pair -> positions (history snapshots) where the
        #: pair occurred, newest last.  Rebuilt incrementally.
        self._index: dict[tuple[int, int], deque[int]] = {}
        self._sequence = 0
        #: Per-position successor deltas, keyed by sequence number.
        self._deltas: dict[int, int] = {}
        self._last_by_pid: dict[int, tuple[int, int]] = {}  # pid -> (vpn, seq)
        self._pending_pair: dict[int, tuple[int, int]] = {}  # pid -> last two deltas

    def reset(self) -> None:
        self._history.clear()
        self._index.clear()
        self._deltas.clear()
        self._last_by_pid.clear()
        self._pending_pair.clear()
        self._sequence = 0

    def _trim_index(self) -> None:
        """Drop index entries pointing before the buffer's horizon."""
        horizon = self._sequence - self.buffer_size
        for positions in self._index.values():
            while positions and positions[0] < horizon:
                positions.popleft()

    def on_fault(self, key: PageKey, now: int, cache_hit: bool) -> None:
        pid, vpn = key
        previous = self._last_by_pid.get(pid)
        self._history.append(key)
        sequence = self._sequence
        self._sequence += 1
        if previous is not None:
            prev_vpn, prev_seq = previous
            delta = vpn - prev_vpn
            self._deltas[prev_seq] = delta
            # Update the delta-pair index using the pid's pending pair.
            pending = self._pending_pair.get(pid)
            if pending is not None:
                first, second = pending
                self._index.setdefault((first, second), deque()).append(prev_seq)
                self._pending_pair[pid] = (second, delta)
            else:
                self._pending_pair[pid] = (0, delta)
        self._last_by_pid[pid] = (vpn, sequence)
        if self._sequence % self.buffer_size == 0:
            self._trim_index()
            horizon = self._sequence - 2 * self.buffer_size
            for seq in [s for s in self._deltas if s < horizon]:
                del self._deltas[seq]

    def candidates(self, key: PageKey, now: int) -> list[PageKey]:
        pid, vpn = key
        pending = self._pending_pair.get(pid)
        if pending is None:
            return []
        positions = self._index.get(pending)
        if not positions:
            return []
        # Replay the delta chain that followed the most recent
        # occurrence of this context.  ``_deltas[s]`` is the delta that
        # followed the fault with sequence number ``s``; chains walk
        # consecutive sequence numbers (single-process streams — a
        # pid-blind GHB interleaves chains across processes, which is
        # precisely the §2.3 weakness it shares with the other
        # hardware-style baselines).
        start = positions[-1]
        picks: list[PageKey] = []
        position = start
        target = vpn
        for _ in range(min(self.degree, self.max_chain)):
            delta = self._deltas.get(position)
            if delta is None:
                break
            target += delta
            if target >= 0:
                picks.append((pid, target))
            position += 1
        return picks

    @property
    def memory_footprint(self) -> int:
        """Rough entry count — the Table 1 'high memory overhead' row."""
        return (
            len(self._history)
            + sum(len(v) for v in self._index.values())
            + len(self._deltas)
        )
