"""Stride prefetcher, after Baer & Chen [Supercomputing '91].

A hardware-style address prefetcher: detect a repeating stride between
consecutive misses and, once the stride has repeated (confidence above
a threshold), prefetch along it.  Aggressiveness — the *degree*, how
many strides ahead to fetch — is driven by the accuracy of the
previous round, matching the paper's description ("the aggressiveness
of this prefetcher depends on the accuracy of the past prefetch").

Two structural weaknesses the paper exploits (Figures 9–10):

* a single global detector cannot distinguish processes or threads, so
  interleaved streams reset its confidence constantly (the paper's
  §2.3 multi-thread argument), giving it the worst coverage of the
  four; and
* when it *does* lock on, it prefetches exactly along one stride with
  perfect timeliness — Figure 10b shows Stride with the best
  timeliness yet the worst completion time, which this implementation
  reproduces.
"""

from __future__ import annotations

from repro.mem.page import PageKey
from repro.prefetchers.base import Prefetcher

__all__ = ["StridePrefetcher"]


class StridePrefetcher(Prefetcher):
    """Two-miss stride detection with accuracy-driven degree."""

    name = "stride"

    def __init__(self, min_confidence: int = 2, max_degree: int = 8) -> None:
        if min_confidence < 1:
            raise ValueError(f"min_confidence must be >= 1, got {min_confidence}")
        if max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {max_degree}")
        self.min_confidence = min_confidence
        self.max_degree = max_degree
        self._last_key: PageKey | None = None
        self._stride = 0
        self._confidence = 0
        self._issued_since_feedback = 0
        self._hits_since_feedback = 0
        self._degree = 2

    def reset(self) -> None:
        self._last_key = None
        self._stride = 0
        self._confidence = 0
        self._issued_since_feedback = 0
        self._hits_since_feedback = 0
        self._degree = 2

    def on_fault(self, key: PageKey, now: int, cache_hit: bool) -> None:
        if self._last_key is not None and self._last_key[0] == key[0]:
            stride = key[1] - self._last_key[1]
            if stride != 0 and stride == self._stride:
                self._confidence += 1
            else:
                self._stride = stride
                self._confidence = 1 if stride != 0 else 0
        else:
            # Fault from a different process: a pid-blind hardware
            # detector loses its training here.
            self._stride = 0
            self._confidence = 0
        self._last_key = key

    def on_prefetch_hit(self, key: PageKey, now: int) -> None:
        self._hits_since_feedback += 1

    def _update_degree(self) -> None:
        """Grow the degree on accurate rounds, shrink on wasted ones."""
        if self._issued_since_feedback == 0:
            return
        accuracy = self._hits_since_feedback / self._issued_since_feedback
        if accuracy >= 0.5:
            self._degree = min(self.max_degree, self._degree * 2)
        elif accuracy < 0.25:
            self._degree = max(1, self._degree // 2)
        self._issued_since_feedback = 0
        self._hits_since_feedback = 0

    def candidates(self, key: PageKey, now: int) -> list[PageKey]:
        if self._confidence < self.min_confidence or self._stride == 0:
            return []
        self._update_degree()
        pid, vpn = key
        picks = [
            (pid, target)
            for step in range(1, self._degree + 1)
            if (target := vpn + self._stride * step) >= 0
        ]
        self._issued_since_feedback += len(picks)
        return picks
