"""Baseline prefetchers the paper compares against (§5.2.3)."""

from repro.prefetchers.base import NoopPrefetcher, OffsetPrefetcher, Prefetcher
from repro.prefetchers.ghb import GHBPrefetcher
from repro.prefetchers.next_n_line import NextNLinePrefetcher
from repro.prefetchers.readahead import ReadAheadPrefetcher
from repro.prefetchers.stride import StridePrefetcher

__all__ = [
    "GHBPrefetcher",
    "NextNLinePrefetcher",
    "NoopPrefetcher",
    "OffsetPrefetcher",
    "Prefetcher",
    "ReadAheadPrefetcher",
    "StridePrefetcher",
]
