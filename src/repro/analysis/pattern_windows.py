"""Figure 3 analysis: strict vs majority window classification.

The paper classifies every fault-sequence window of length X ∈ {2,4,8}
as *sequential* (every delta is +1), *stride* (every delta equal, but
not +1), or *other* — and then shows that a majority-based classifier
(≥ ⌊X/2⌋+1 matching deltas) recovers 11.3–29.7% more sequential
windows at X = 8, because strict matching cannot tolerate a single
interruption.

The same classifiers run here over the synthetic application traces,
regenerating the Figure 3 bar groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.majority import verified_majority

__all__ = [
    "WindowFractions",
    "classify_strict",
    "classify_majority",
    "window_fractions",
    "deltas_of",
]


@dataclass(frozen=True, slots=True)
class WindowFractions:
    """Fraction of windows per category (sums to 1 when total > 0)."""

    sequential: float
    stride: float
    other: float
    windows: int

    def as_dict(self) -> dict[str, float]:
        return {
            "sequential": self.sequential,
            "stride": self.stride,
            "other": self.other,
            "windows": self.windows,
        }


def deltas_of(addresses: Sequence[int]) -> list[int]:
    """Differences between consecutive page addresses."""
    return [b - a for a, b in zip(addresses, addresses[1:])]


def classify_strict(deltas: Sequence[int]) -> str:
    """Strict rule: all deltas identical (and +1 means sequential)."""
    if not deltas:
        return "other"
    first = deltas[0]
    if any(delta != first for delta in deltas):
        return "other"
    if first == 1:
        return "sequential"
    if first != 0:
        return "stride"
    return "other"


def classify_majority(deltas: Sequence[int]) -> str:
    """Majority rule: the window's verified-majority delta decides."""
    majority = verified_majority(list(deltas))
    if majority is None or majority == 0:
        return "other"
    if majority == 1:
        return "sequential"
    return "stride"


def window_fractions(
    addresses: Iterable[int],
    window: int,
    majority: bool = False,
) -> WindowFractions:
    """Classify all length-*window* fault windows of an address stream.

    ``window`` counts *faults*, as in the paper, so each window spans
    ``window - 1`` deltas.  Windows slide by one fault.
    """
    if window < 2:
        raise ValueError(f"window must span at least 2 faults, got {window}")
    classify = classify_majority if majority else classify_strict
    counts = {"sequential": 0, "stride": 0, "other": 0}
    total = 0
    recent: list[int] = []
    previous: int | None = None
    for address in addresses:
        if previous is not None:
            recent.append(address - previous)
            if len(recent) > window - 1:
                recent.pop(0)
            if len(recent) == window - 1:
                counts[classify(recent)] += 1
                total += 1
        previous = address
    if total == 0:
        return WindowFractions(0.0, 0.0, 0.0, 0)
    return WindowFractions(
        sequential=counts["sequential"] / total,
        stride=counts["stride"] / total,
        other=counts["other"] / total,
        windows=total,
    )
