"""Trace analysis (Figure 3 window classification)."""

from repro.analysis.pattern_windows import (
    WindowFractions,
    classify_majority,
    classify_strict,
    deltas_of,
    window_fractions,
)

__all__ = [
    "WindowFractions",
    "classify_majority",
    "classify_strict",
    "deltas_of",
    "window_fractions",
]
