"""R5 — trace emit discipline: registered names, guarded kernel emits.

Two contracts keep the tracing layer (:mod:`repro.obs`) deterministic
and free on the hot path:

* **Registered names** — every ``tracer.span/instant/counter`` call
  site must name its event with an UPPER_CASE constant imported from
  ``obs/names.py`` (the single registry that defines the id → label
  table recordings serialize).  A string literal or ad-hoc expression
  would mint an id outside the registry, so two recordings could give
  one label different ids — and ``repro obs diff`` would silently
  compare different stages.
* **Guarded kernel emits** — inside ``kernel/`` burst loops an emit
  must sit under an ``if <tracer>.enabled:`` guard.  The emit methods
  early-return when disabled, but the call itself (argument evaluation
  + dispatch) is per-iteration overhead in exactly the loops the
  engine-A/B wall-clock ratio tracks; the guard makes the disabled
  cost one attribute load.

An *emit call* is any ``.span(...)``/``.instant(...)``/``.counter(...)``
whose receiver's dotted name ends in ``tracer`` (``self.tracer``,
``vmm.tracer``, a local ``tracer``, ...) — the naming convention the
wiring uses everywhere.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import CheckContext, Finding, dotted_name

RULE_ID = "R5"
TITLE = "trace emit discipline (names from obs/names.py, guarded kernel emits)"

#: The emit methods of repro.obs.trace.TraceCollector.
EMIT_METHODS = ("span", "instant", "counter")

#: The registry module, relative to the package dir.
NAMES_MODULE = "obs/names.py"


def _registry_constants(ctx: CheckContext) -> set[str] | None:
    """UPPER_CASE constants ``obs/names.py`` assigns from ``_name(...)``.

    Returns None when the tree has no registry module (fixture trees
    without an obs layer skip the membership check but still ban
    literals).
    """
    src = ctx.sources.get(NAMES_MODULE)
    if src is None:
        return None
    constants: set[str] = set()
    for node in src.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or not target.id.isupper():
            continue
        value = node.value
        if isinstance(value, ast.Call) and dotted_name(value.func) == "_name":
            constants.add(target.id)
    return constants


def _emit_call(node: ast.AST) -> tuple[str, str] | None:
    """(receiver, method) when *node* is a tracer emit call, else None."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return None
    if node.func.attr not in EMIT_METHODS:
        return None
    receiver = dotted_name(node.func.value)
    if receiver is None or not receiver.split(".")[-1].endswith("tracer"):
        return None
    return receiver, node.func.attr


def _name_arg_key(arg: ast.AST) -> tuple[str | None, str]:
    """(constant name or None, description) for an emit's name argument."""
    if isinstance(arg, ast.Name):
        return arg.id, arg.id
    if isinstance(arg, ast.Attribute):
        # names.FAULT_MAP style: validate the final attribute.
        return arg.attr, dotted_name(arg) or arg.attr
    if isinstance(arg, ast.Constant):
        return None, repr(arg.value)
    return None, type(arg).__name__


def _name_findings(
    rel: str, tree: ast.Module, registry: set[str] | None
) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        emit = _emit_call(node)
        if emit is None:
            continue
        _, method = emit
        if not node.args:
            continue  # a signature error pytest catches; not R5's business
        constant, described = _name_arg_key(node.args[0])
        ok = (
            constant is not None
            and constant.isupper()
            and (registry is None or constant in registry)
        )
        if not ok:
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=rel,
                    line=node.lineno,
                    message=f"tracer.{method}() name {described} is not a "
                    f"registered constant from {NAMES_MODULE}",
                    hint="add the event to obs/names.py and pass the "
                    "UPPER_CASE constant (never a string literal)",
                    key=f"emit-name-{method}-{described}",
                )
            )
    return findings


def _guard_test_enables(test: ast.AST) -> bool:
    """True when an ``if`` test checks a tracer's ``enabled`` flag."""
    if isinstance(test, ast.BoolOp):
        return any(_guard_test_enables(value) for value in test.values)
    name = dotted_name(test)
    return name is not None and name.endswith(".enabled")


def _kernel_guard_findings(rel: str, tree: ast.Module) -> list[Finding]:
    findings = []

    def visit(node: ast.AST, in_loop: bool, guarded: bool, func: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node.name
            in_loop = False
            guarded = False
        emit = _emit_call(node)
        if emit is not None and in_loop and not guarded:
            receiver, method = emit
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=rel,
                    line=node.lineno,
                    message=f"unguarded {receiver}.{method}() inside a kernel "
                    f"burst loop (in {func})",
                    hint="wrap the emit in `if <tracer>.enabled:` so the "
                    "disabled cost is one attribute load",
                    key=f"unguarded-emit-{func}-{method}",
                )
            )
        if isinstance(node, ast.If) and _guard_test_enables(node.test):
            for child in node.body:
                visit(child, in_loop, True, func)
            for child in node.orelse:
                visit(child, in_loop, guarded, func)
            return
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for child in node.body:
                visit(child, True, guarded, func)
            for child in node.orelse:
                visit(child, in_loop, guarded, func)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, in_loop, guarded, func)

    visit(tree, False, False, "<module>")
    return findings


def run(ctx: CheckContext) -> list[Finding]:
    registry = _registry_constants(ctx)
    findings: list[Finding] = []
    for rel, src in ctx.sources.items():
        if rel == NAMES_MODULE:
            continue
        findings.extend(_name_findings(rel, src.tree, registry))
        if rel.startswith("kernel/"):
            findings.extend(_kernel_guard_findings(rel, src.tree))
    return findings
