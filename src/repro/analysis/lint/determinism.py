"""R1 — determinism: no wall clock, ambient randomness, or unordered
iteration in the simulation core.

Every simulated metric in this repo is contractually byte-identical
across runs, engines, and Python processes.  Three source-level leaks
can break that silently:

* **wall clock** — ``time.time()`` / ``datetime.now()`` feeding a
  simulated value ties results to the host;
* **ambient randomness** — stdlib ``random`` / ``uuid`` /
  ``os.urandom`` / ``numpy.random`` bypasses the seeded
  :class:`repro.sim.rng.SimRandom` streams;
* **unordered iteration** — a ``for`` over a ``set`` expression feeds
  hash order (which varies with PYTHONHASHSEED) into results.

Scope: the simulation packages get the full ban (``sim/``,
``kernel/``, ``datapath/``, ``mem/``, ``workloads/``, ``control/``,
``core/``, ``rdma/``, ``prefetchers/``, ``cluster/``, ``scenarios/``,
``metrics/``, ``analysis/``, ``storage/``, ``vfs/``, ``obs/``,
``trace/``).  The service
layer may reach the wall clock, but only through the allowlisted
``service/clock.py`` (``time.monotonic``/``time.sleep`` stay legal
there — they pace host polling and never enter payloads).  ``perf/``,
``bench/``, and ``cli/`` measure wall clock on purpose and are exempt
from the clock ban, but the unordered-iteration check still applies to
every module: report ordering must not depend on hash seeds either.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import CheckContext, Finding, dotted_name, iter_parents

RULE_ID = "R1"
TITLE = "determinism (no wall clock / ambient randomness / unordered iteration)"

#: Packages holding simulated state: full clock + randomness ban.
SIM_SCOPE = (
    "sim/",
    "kernel/",
    "datapath/",
    "mem/",
    "workloads/",
    "control/",
    "core/",
    "rdma/",
    "prefetchers/",
    "cluster/",
    "scenarios/",
    "metrics/",
    "analysis/",
    "storage/",
    "vfs/",
    "obs/",
    "trace/",
)

#: Modules allowed to break the ban, with the reason on record.
ALLOWLIST = {
    # SimRandom's own implementation: wraps seeded random.Random and
    # mirrors MT19937 state into numpy.  The one randomness source.
    "sim/rng.py": ("random", "numpy.random"),
    # The service layer's single wall-clock + job-id window.
    "service/clock.py": ("time", "uuid"),
}

#: Modules banned outright in sim scope (any import is a finding).
_BANNED_SIM_MODULES = ("time", "datetime", "random", "uuid", "secrets")

#: Wall-clock calls banned in the service layer (monotonic/sleep ok).
_BANNED_SERVICE_CALLS = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
)

_SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)


def _allowed(rel: str, what: str) -> bool:
    return what in ALLOWLIST.get(rel, ())


def _module_findings(rel: str, tree: ast.Module) -> list[Finding]:
    """Ban whole-module imports of clock/randomness sources in sim scope."""
    findings = []
    for node in ast.walk(tree):
        names: list[tuple[str, int]] = []
        if isinstance(node, ast.Import):
            names = [(alias.name.split(".")[0], node.lineno) for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            names = [(node.module.split(".")[0], node.lineno)]
        for mod, lineno in names:
            if mod in _BANNED_SIM_MODULES and not _allowed(rel, mod):
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=rel,
                        line=lineno,
                        message=f"import of nondeterministic module '{mod}' in simulation scope",
                        hint="route randomness through repro.sim.rng.SimRandom; wall clock has"
                        " no place in simulated state (service code: use service/clock.py)",
                        key=f"import-{mod}",
                    )
                )
    return findings


def _call_findings(rel: str, tree: ast.Module, banned: tuple[str, ...]) -> list[Finding]:
    """Flag specific banned call expressions (service scope, os.urandom)."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in banned and not _allowed(rel, name.split(".")[0]):
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=rel,
                    line=node.lineno,
                    message=f"wall-clock/entropy call '{name}()' outside service/clock.py",
                    hint="import wall_time()/job_id() from repro.service.clock instead",
                    key=f"call-{name}",
                )
            )
    return findings


def _numpy_random_findings(rel: str, tree: ast.Module) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute) or node.attr != "random":
            continue
        base = node.value
        if isinstance(base, ast.Name) and base.id in ("np", "numpy"):
            if not _allowed(rel, "numpy.random"):
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=rel,
                        line=node.lineno,
                        message="direct numpy.random use bypasses the seeded SimRandom streams",
                        hint="use SimRandom.random_array / a labelled stream from repro.sim.rng",
                        key="numpy-random",
                    )
                )
    return findings


def _is_set_expr(node: ast.AST) -> bool:
    """Expressions whose iteration order depends on the hash seed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = dotted_name(node.func)
        if func in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _sorted_wraps(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """True when ``node`` is (an argument of) a call to sorted()/min()/max()."""
    parent = parents.get(node)
    # Walk through the comprehension plumbing up to the enclosing call.
    while isinstance(parent, (ast.comprehension, ast.GeneratorExp, ast.SetComp, ast.ListComp)):
        parent = parents.get(parent)
    if isinstance(parent, ast.Call):
        func = dotted_name(parent.func)
        return func in ("sorted", "min", "max", "sum", "len", "any", "all")
    return False


def _iteration_findings(rel: str, tree: ast.Module) -> list[Finding]:
    """Flag result-feeding iteration over set expressions.

    A ``for`` statement over a set expression executes its body in
    hash order; a comprehension over one builds a hash-ordered list.
    Both are exempt when the result immediately flows through an
    order-insensitive reducer (``sorted``, ``min``, ``max``, ``sum``,
    ``len``, ``any``, ``all``).
    """
    findings = []
    parents = iter_parents(tree)
    seen_lines: set[int] = set()

    def flag(iter_node: ast.AST, context: str) -> None:
        if iter_node.lineno in seen_lines:
            return
        seen_lines.add(iter_node.lineno)
        findings.append(
            Finding(
                rule=RULE_ID,
                path=rel,
                line=iter_node.lineno,
                message=f"{context} iterates a set expression in hash order",
                hint="wrap the set in sorted(...) so iteration order is deterministic",
                key=f"set-iteration-L{iter_node.lineno}",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            flag(node.iter, "for loop")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter) and not _sorted_wraps(node, parents):
                    flag(gen.iter, "comprehension")
    return findings


def run(ctx: CheckContext) -> list[Finding]:
    findings: list[Finding] = []
    for rel, src in ctx.sources.items():
        in_sim = rel.startswith(SIM_SCOPE)
        in_service = rel.startswith("service/")
        if in_sim:
            findings.extend(_module_findings(rel, src.tree))
            findings.extend(_call_findings(rel, src.tree, ("os.urandom",)))
            findings.extend(_numpy_random_findings(rel, src.tree))
        elif in_service:
            findings.extend(_call_findings(rel, src.tree, _BANNED_SERVICE_CALLS))
            # stdlib random / secrets have no business in the service
            # layer either; uuid is allowlisted into clock.py only.
            for imp in _module_findings(rel, src.tree):
                if imp.key in ("import-random", "import-secrets", "import-uuid"):
                    findings.append(imp)
        # Hash-ordered iteration corrupts reports too, not just sims.
        findings.extend(_iteration_findings(rel, src.tree))
    return findings
