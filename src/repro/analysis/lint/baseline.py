"""Baseline (suppression) files for ``repro check``.

A baseline is a reviewed list of finding fingerprints that are
tolerated — the escape hatch that lets a new rule land while a real
cleanup happens in a follow-up.  Fingerprints are line-number-free
(``rule:path:key``) so unrelated edits don't invalidate the file.

Format (JSON, stable ordering so diffs review well)::

    {
      "version": 1,
      "suppressions": ["R2:sim/run.py:slots-RunResult", ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lint.base import Finding

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints suppressed by the file at ``path``."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file {path}")
    suppressions = data.get("suppressions", [])
    if not all(isinstance(s, str) for s in suppressions):
        raise ValueError(f"baseline suppressions must be strings: {path}")
    return set(suppressions)


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write the current findings as a reviewed baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "suppressions": sorted({f.fingerprint for f in findings}),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    findings: Sequence[Finding], suppressed: set[str]
) -> tuple[list[Finding], set[str]]:
    """(kept findings, unused suppressions).

    Unused suppressions are reported so stale waivers get pruned when
    the underlying violation is actually fixed.
    """
    kept = [f for f in findings if f.fingerprint not in suppressed]
    used = {f.fingerprint for f in findings if f.fingerprint in suppressed}
    return kept, suppressed - used
