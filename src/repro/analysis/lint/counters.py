"""R4 — counter registry: every counter surfaces and is documented.

A counter that is incremented but never exported is unverifiable dead
weight; one that is exported but undocumented is a trap for whoever
reads the artifact.  This rule closes the loop for the two counter
structs on the fault path:

* every public integer field of ``PrefetchMetrics``
  (``metrics/counters.py``) must appear as a key in its ``as_dict``
  export (that is what lands in artifact ``pipeline`` sections);
* every public counter attribute assigned in ``QueueStats.__init__``
  (``rdma/qp.py``) must be read somewhere outside ``rdma/qp.py``
  (``agent.dispatch_stats``, ``MemoryServer.stats_row``, ... — the
  payload producers);
* both sets of names must appear in ``PERF_BUDGETS.md``'s counter
  registry, so the docs and the code can't drift apart.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.base import CheckContext, Finding

RULE_ID = "R4"
TITLE = "counter registry (counters surface in payloads and PERF_BUDGETS.md)"

METRICS_MODULE = "metrics/counters.py"
METRICS_CLASS = "PrefetchMetrics"
QUEUE_MODULE = "rdma/qp.py"
QUEUE_CLASS = "QueueStats"


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _int_fields(cls: ast.ClassDef) -> dict[str, int]:
    """Public int-annotated dataclass fields (the scalar counters)."""
    fields: dict[str, int] = {}
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        if isinstance(stmt.annotation, ast.Name) and stmt.annotation.id == "int":
            fields[name] = stmt.lineno
    return fields


def _init_counters(cls: ast.ClassDef) -> dict[str, int]:
    """Public ``self.X = ...`` attributes assigned in __init__."""
    counters: dict[str, int] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and not target.attr.startswith("_")
                        ):
                            counters.setdefault(target.attr, node.lineno)
    return counters


def _string_keys(node: ast.AST) -> set[str]:
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def _attribute_reads(tree: ast.Module, names: set[str]) -> set[str]:
    return {n.attr for n in ast.walk(tree) if isinstance(n, ast.Attribute) and n.attr in names}


def _documented(text: str, name: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", text) is not None


def run(ctx: CheckContext) -> list[Finding]:
    findings: list[Finding] = []
    budgets = ctx.budgets_text()

    checks: list[tuple[str, str, dict[str, int], set[str]]] = []

    metrics_src = ctx.sources.get(METRICS_MODULE)
    if metrics_src is not None:
        cls = _class_def(metrics_src.tree, METRICS_CLASS)
        if cls is not None:
            fields = _int_fields(cls)
            exported: set[str] = set()
            for stmt in cls.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "as_dict":
                    exported = _string_keys(stmt)
            for name, line in sorted(fields.items()):
                if name not in exported:
                    findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=METRICS_MODULE,
                            line=line,
                            message=f"{METRICS_CLASS}.{name} is not exported by as_dict()",
                            hint="add the counter to PrefetchMetrics.as_dict so it reaches"
                            " artifact payloads",
                            key=f"unexported-{METRICS_CLASS}.{name}",
                        )
                    )
            checks.append((METRICS_MODULE, METRICS_CLASS, fields, set(fields)))

    queue_src = ctx.sources.get(QUEUE_MODULE)
    if queue_src is not None:
        cls = _class_def(queue_src.tree, QUEUE_CLASS)
        if cls is not None:
            counters = _init_counters(cls)
            surfaced: set[str] = set()
            for rel, source in ctx.sources.items():
                if rel == QUEUE_MODULE:
                    continue
                surfaced |= _attribute_reads(source.tree, set(counters))
            for name, line in sorted(counters.items()):
                if name not in surfaced:
                    findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=QUEUE_MODULE,
                            line=line,
                            message=f"{QUEUE_CLASS}.{name} never surfaces in a payload producer",
                            hint="read it in agent.dispatch_stats / MemoryServer.stats_row"
                            " (or drop the counter)",
                            key=f"unsurfaced-{QUEUE_CLASS}.{name}",
                        )
                    )
            checks.append((QUEUE_MODULE, QUEUE_CLASS, counters, set(counters)))

    if not checks:
        return findings

    if budgets is None:
        findings.append(
            Finding(
                rule=RULE_ID,
                path="PERF_BUDGETS.md",
                line=1,
                message="PERF_BUDGETS.md not found — counter registry cannot be checked",
                hint="keep PERF_BUDGETS.md at the repo root with a counter registry section",
                key="missing-budgets",
            )
        )
        return findings

    for module, cls_name, fields, _ in checks:
        for name, line in sorted(fields.items()):
            if not _documented(budgets, name):
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=module,
                        line=line,
                        message=f"{cls_name}.{name} is undocumented in PERF_BUDGETS.md",
                        hint="add the counter to the registry table in PERF_BUDGETS.md",
                        key=f"undocumented-{cls_name}.{name}",
                    )
                )
    return findings
