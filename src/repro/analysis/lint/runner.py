"""Collects sources, runs the rule set, orders the findings.

The runner is deliberately root-parameterized: production use points it
at the installed ``repro`` package (``default_repro_dir``), the test
suite points it at tiny fixture trees that mirror the package layout
with seeded violations.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.lint import counters, determinism, hygiene, parity, tracing
from repro.analysis.lint.base import CheckContext, Finding, SourceFile

__all__ = ["RULES", "build_context", "default_repro_dir", "run_check"]

#: Rule id -> (title, run callable).  Ordered: findings sort by rule id.
RULES: dict[str, tuple[str, Callable[[CheckContext], list[Finding]]]] = {
    determinism.RULE_ID: (determinism.TITLE, determinism.run),
    hygiene.RULE_ID: (hygiene.TITLE, hygiene.run),
    parity.RULE_ID: (parity.TITLE, parity.run),
    counters.RULE_ID: (counters.TITLE, counters.run),
    tracing.RULE_ID: (tracing.TITLE, tracing.run),
}


def default_repro_dir() -> Path:
    """The installed ``repro`` package directory (src/repro in checkout)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _find_budgets(repro_dir: Path) -> Path | None:
    """PERF_BUDGETS.md, walking up from the package dir (src layout)."""
    for ancestor in [repro_dir, *repro_dir.parents[:3]]:
        candidate = ancestor / "PERF_BUDGETS.md"
        if candidate.exists():
            return candidate
    return None


def build_context(repro_dir: Path, budgets_path: Path | None = None) -> CheckContext:
    sources: dict[str, SourceFile] = {}
    for path in sorted(repro_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(repro_dir).as_posix()
        text = path.read_text()
        sources[rel] = SourceFile(rel=rel, path=path, text=text, tree=ast.parse(text, str(path)))
    if budgets_path is None:
        budgets_path = _find_budgets(repro_dir)
    return CheckContext(repro_dir=repro_dir, sources=sources, budgets_path=budgets_path)


def run_check(
    repro_dir: Path | None = None,
    rules: Sequence[str] | None = None,
    budgets_path: Path | None = None,
) -> list[Finding]:
    """Run the selected rules (all by default) and return sorted findings."""
    if repro_dir is None:
        repro_dir = default_repro_dir()
    selected = list(RULES) if rules is None else list(rules)
    unknown = [r for r in selected if r not in RULES]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)} (have {', '.join(RULES)})")
    ctx = build_context(Path(repro_dir), budgets_path=budgets_path)
    findings: list[Finding] = []
    for rule_id in selected:
        _, run = RULES[rule_id]
        findings.extend(run(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.key))
    return findings
