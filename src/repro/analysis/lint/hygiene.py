"""R2 — hot-path hygiene: slotted dataclasses, allocation-free kernel loops.

The fault path creates a :class:`PageTableEntry`-sized object per
resident page and touches counters on every access; ``__dict__``-backed
instances cost ~3x the memory and a dict lookup per attribute.  Every
``@dataclass`` in the hot packages must therefore declare
``slots=True``.

The vectorized kernel's burst loops (``kernel/``) and the columnar
trace subsystem (``trace/``) additionally must not allocate
per-iteration container objects: a ``dict``/``set`` literal,
``dict``/``set`` comprehension, or ``lambda`` inside a
``for``/``while`` body re-allocates on every burst (or per trace
block) and shows up directly in the engine-A/B wall-clock ratio the
nightly tracks.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import CheckContext, Finding, dotted_name

RULE_ID = "R2"
TITLE = "hot-path hygiene (slots=True dataclasses, allocation-free kernel loops)"

#: Packages whose dataclasses sit on the per-access fault path (or are
#: instantiated per page / per burst).
HOT_SCOPE = (
    "sim/",
    "kernel/",
    "datapath/",
    "mem/",
    "rdma/",
    "core/",
    "metrics/",
    "cluster/",
    "workloads/",
    "control/",
    "prefetchers/",
    "analysis/",
    "storage/",
    "vfs/",
    "obs/",
    "trace/",
)

#: Packages whose ``for``/``while`` bodies must stay allocation-free.
LOOP_SCOPE = ("kernel/", "trace/")

_LOOP_ALLOC_NODES = (ast.Dict, ast.Set, ast.DictComp, ast.SetComp, ast.Lambda)


def _is_dataclass_decorator(node: ast.AST) -> ast.Call | None:
    """The decorator Call node if this is @dataclass(...), else None.

    A bare ``@dataclass`` (no call) returns a sentinel ``None``-call by
    convention: the caller treats "not a Call" as "no slots keyword".
    """
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("dataclass", "dataclasses.dataclass"):
            return node
        return None
    return None


def _dataclass_findings(rel: str, tree: ast.Module) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for dec in node.decorator_list:
            name = dotted_name(dec)
            call = _is_dataclass_decorator(dec)
            if name in ("dataclass", "dataclasses.dataclass") and call is None:
                has_slots = False  # bare @dataclass
            elif call is not None:
                has_slots = any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in call.keywords
                )
            else:
                continue
            if not has_slots:
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=rel,
                        line=node.lineno,
                        message=f"dataclass '{node.name}' in hot package lacks slots=True",
                        hint="declare @dataclass(slots=True) (subclasses of a slotted base"
                        " must be slotted too)",
                        key=f"slots-{node.name}",
                    )
                )
            break
    return findings


def _loop_alloc_findings(rel: str, tree: ast.Module) -> list[Finding]:
    findings = []
    func_name = "<module>"

    def visit(node: ast.AST, in_loop: bool, func: str) -> None:
        nonlocal findings
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node.name
            in_loop = False  # a def inside a loop gets its own budget
        if in_loop and isinstance(node, _LOOP_ALLOC_NODES):
            kind = type(node).__name__
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=rel,
                    line=node.lineno,
                    message=f"{kind} allocated inside a kernel burst loop (in {func})",
                    hint="hoist the container/lambda out of the loop or restructure"
                    " as a columnar array op",
                    key=f"loop-alloc-{func}-{kind}",
                )
            )
            return  # one finding per construct; don't descend further
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for child in node.body:
                visit(child, True, func)
            for child in node.orelse:
                visit(child, in_loop, func)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, in_loop, func)

    visit(tree, False, func_name)
    return findings


def run(ctx: CheckContext) -> list[Finding]:
    findings: list[Finding] = []
    for rel, src in ctx.sources.items():
        if rel.startswith(HOT_SCOPE):
            findings.extend(_dataclass_findings(rel, src.tree))
        if rel.startswith(LOOP_SCOPE):
            findings.extend(_loop_alloc_findings(rel, src.tree))
    return findings
