"""Shared infrastructure for the ``repro check`` static-analysis rules.

Each rule module exposes ``RULE_ID``, ``TITLE``, and
``run(ctx) -> list[Finding]``; this module provides the pieces they
share — the :class:`Finding` record, the parsed-source table inside
:class:`CheckContext`, and small AST helpers.

A finding's ``key`` is a stable, line-number-free identifier (the
banned name, the offending class, the config field, ...).  Baselines
suppress on ``fingerprint`` = ``rule:path:key`` so a reviewed waiver
survives unrelated edits that shift line numbers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "CheckContext",
    "Finding",
    "SourceFile",
    "dotted_name",
    "iter_parents",
]


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation: where, what, and how to fix it."""

    rule: str
    path: str  # posix path relative to the ``repro`` package dir
    line: int
    message: str
    hint: str
    key: str  # stable id for baseline matching (no line numbers)

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}:{self.path}:{self.key}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message} (hint: {self.hint})"


@dataclass(frozen=True, slots=True)
class SourceFile:
    """A parsed module: path relative to the package dir, text, AST."""

    rel: str
    path: Path
    text: str
    tree: ast.Module


@dataclass(frozen=True, slots=True)
class CheckContext:
    """Everything a rule needs: the parsed tree and where docs live.

    ``sources`` maps posix-relative paths (``sim/machine.py``) to
    parsed modules.  ``budgets_path`` is the repo's PERF_BUDGETS.md (or
    None when the tree under analysis has none — rule R4 reports that
    itself).
    """

    repro_dir: Path
    sources: dict[str, SourceFile]
    budgets_path: Path | None

    def budgets_text(self) -> str | None:
        if self.budgets_path is None or not self.budgets_path.exists():
            return None
        return self.budgets_path.read_text()


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Child → parent map for the whole tree (one pass, reused by rules)."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents
