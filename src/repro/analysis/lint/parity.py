"""R3 — engine parity: every MachineConfig knob reaches both engines.

PR 7's contract is that the object :class:`FaultPipeline` and the
vectorized burst engine produce byte-identical simulated metrics.  The
cheapest way to break that silently is a config field consumed by one
engine and ignored by the other — the tests only catch it if some
fixture happens to vary that field.  This rule makes the drift a CI
failure at the source level:

* a field **read nowhere** is a dead knob (finding);
* a field read **only** in the object-engine scope (``datapath/``) or
  **only** in the vectorized scope (``kernel/``), with no shared-scope
  read, is one-sided (finding) unless listed in
  :data:`PARITY_ALLOWLIST` with a reason.

Reads in shared scope — :class:`repro.sim.machine.Machine` assembling
the backend/cache/prefetcher both engines run on, the scheduler, the
VMM — count for *both* engines, because both execute on the objects
built there.  A "read" is an attribute access ``<config expr>.field``
where the base is a name ``config``/``cfg`` or an attribute ending in
``.config`` (``self.config.x``, ``machine.config.x``); the
``MachineConfig`` class body itself (defaults, ``validate``) does not
count.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import CheckContext, Finding

RULE_ID = "R3"
TITLE = "engine parity (every MachineConfig field honored by both engines)"

CONFIG_MODULE = "sim/machine.py"
CONFIG_CLASS = "MachineConfig"

#: Fields deliberately consumed by a single engine, with the reviewed
#: reason.  Adding a field here is a code-review decision — the rule
#: prints the reason so the waiver stays visible in CI logs.
PARITY_ALLOWLIST: dict[str, str] = {}

_OBJECT_SCOPE = ("datapath/",)
_VECTORIZED_SCOPE = ("kernel/",)


def _config_fields(tree: ast.Module) -> tuple[dict[str, int], ast.ClassDef | None]:
    """MachineConfig's annotated field names (name -> lineno)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            fields = {
                stmt.target.id: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            }
            return fields, node
    return {}, None


def _is_config_base(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("config", "cfg")
    if isinstance(node, ast.Attribute):
        return node.attr in ("config", "cfg")
    return False


def _config_reads(tree: ast.Module, fields: set[str], skip: ast.ClassDef | None) -> set[str]:
    """Field names read as ``<config>.field`` in this module."""
    skipped: set[ast.AST] = set(ast.walk(skip)) if skip is not None else set()
    reads: set[str] = set()
    for node in ast.walk(tree):
        if node in skipped:
            continue
        if isinstance(node, ast.Attribute) and node.attr in fields:
            if _is_config_base(node.value):
                reads.add(node.attr)
    return reads


def run(ctx: CheckContext) -> list[Finding]:
    src = ctx.sources.get(CONFIG_MODULE)
    if src is None:
        return []
    fields, config_class = _config_fields(src.tree)
    if not fields:
        return []

    field_set = set(fields)
    shared: set[str] = set()
    object_only: set[str] = set()
    vectorized_only: set[str] = set()
    for rel, source in ctx.sources.items():
        skip = config_class if rel == CONFIG_MODULE else None
        reads = _config_reads(source.tree, field_set, skip)
        if rel.startswith(_OBJECT_SCOPE):
            object_only |= reads
        elif rel.startswith(_VECTORIZED_SCOPE):
            vectorized_only |= reads
        else:
            shared |= reads

    findings = []
    for name in sorted(fields):
        line = fields[name]
        in_obj = name in object_only or name in shared
        in_vec = name in vectorized_only or name in shared
        if not in_obj and not in_vec:
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=CONFIG_MODULE,
                    line=line,
                    message=f"MachineConfig.{name} is never read — dead config knob",
                    hint="wire the field into Machine/engine construction or delete it",
                    key=f"dead-{name}",
                )
            )
        elif in_obj != in_vec and name not in PARITY_ALLOWLIST:
            side = "object (datapath/)" if in_obj else "vectorized (kernel/)"
            findings.append(
                Finding(
                    rule=RULE_ID,
                    path=CONFIG_MODULE,
                    line=line,
                    message=f"MachineConfig.{name} is read only by the {side} engine",
                    hint="honor it in both engines, or add it to PARITY_ALLOWLIST"
                    " in repro/analysis/lint/parity.py with the reviewed reason",
                    key=f"one-sided-{name}",
                )
            )
    return findings
