"""Repo-specific static analysis behind ``repro check``.

Four AST-based rules guard the invariants the reproduction's results
rest on (see docs/static-analysis.md for the catalog and the how-to):

* **R1 determinism** — no wall clock, ambient randomness, or
  hash-ordered iteration in the simulation core;
* **R2 hot-path hygiene** — slotted dataclasses in hot packages,
  allocation-free kernel burst loops;
* **R3 engine parity** — every ``MachineConfig`` field honored by both
  burst engines (or explicitly allowlisted);
* **R4 counter registry** — every ``PrefetchMetrics``/``QueueStats``
  counter surfaces in payloads and is documented in PERF_BUDGETS.md.

The runtime half of the same contract — structural invariants checked
per burst while a simulation runs — lives in
:mod:`repro.analysis.sanitize`.
"""

from repro.analysis.lint.base import CheckContext, Finding, SourceFile
from repro.analysis.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.lint.runner import RULES, build_context, default_repro_dir, run_check

__all__ = [
    "RULES",
    "CheckContext",
    "Finding",
    "SourceFile",
    "apply_baseline",
    "build_context",
    "default_repro_dir",
    "load_baseline",
    "run_check",
    "write_baseline",
]
