"""Runtime invariant sanitizer: per-burst structural checks, zero drift.

The static rules in :mod:`repro.analysis.lint` catch source-level
determinism leaks; this module catches *state* corruption while a
simulation runs.  :class:`SanitizingFaultPipeline` wraps the object
:class:`~repro.datapath.pipeline.FaultPipeline` (which both burst
engines execute on) and re-verifies the machine's structural
invariants at every batch boundary — the one point all run paths
(``simulate`` / ``run_concurrent`` / ``run_cluster``, object or
vectorized driver) pass through via ``begin_batch``:

* **page table ⇔ LRU residency** — a vpn is mapped iff it is on the
  process's active/inactive residency LRU (and the vectorized engine's
  numpy ``resident_mask``, when attached, agrees bit for bit);
* **cgroup charge accounting** — ``charged_pages`` equals resident
  mappings plus the process's unconsumed page-cache entries, and the
  per-process ``cache_charged`` ledger matches an actual count of the
  shared cache;
* **completion-queue deadline monotonicity** — batch time never runs
  backwards, no live entry's deadline precedes its issue time, and
  after the batch-boundary drain nothing overdue is still in flight;
* **slab slot uniqueness** — on remote/cluster media, every remote
  page key maps to exactly one slot, slot maps back to key, and free
  lists are disjoint from occupied slots.

Every check is **read-only**: the sanitizer observes, never perturbs,
so a sanitized run's simulated metrics are byte-identical to the plain
run (asserted by ``tests/test_sanitize.py``).  Enable it with
``MachineConfig(engine="sanitize")`` (object driver + checks) or
``REPRO_SANITIZE=1`` in the environment (checks on top of whichever
engine is configured).  ``REPRO_SANITIZE_EVERY=N`` checks every Nth
batch (default 1) for long smokes where O(resident) per batch is too
much.

A violated invariant raises :class:`InvariantViolation` naming the
process, the structure, and the disagreement — the point is a loud,
early, located failure instead of a baseline diff three layers later.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.datapath.pipeline import FaultPipeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.vmm import VirtualMemoryManager

__all__ = [
    "InvariantViolation",
    "SanitizingFaultPipeline",
    "install_sanitizer",
    "sanitize_enabled",
    "sanitize_every",
]

_OFF = ("", "0", "false", "no")


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for checks on top of any engine."""
    return os.environ.get("REPRO_SANITIZE", "").lower() not in _OFF


def sanitize_every() -> int:
    """Batch sampling period from ``REPRO_SANITIZE_EVERY`` (default 1)."""
    raw = os.environ.get("REPRO_SANITIZE_EVERY", "1")
    try:
        period = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SANITIZE_EVERY must be an int, got {raw!r}") from exc
    return max(1, period)


class InvariantViolation(AssertionError):
    """A structural invariant of the simulated machine does not hold."""


class SanitizingFaultPipeline(FaultPipeline):
    """FaultPipeline that audits machine state at every batch boundary.

    Subclasses the object pipeline, so the access path itself is the
    audited production code — only ``begin_batch`` gains the read-only
    invariant sweep after the normal drain + reclaim check.
    """

    def __init__(self, vmm: "VirtualMemoryManager", completion_queue=None, every: int = 1) -> None:
        super().__init__(vmm, completion_queue)
        self.every = max(1, every)
        self.batches_checked = 0
        self._batch_index = 0
        self._last_batch_now: int | None = None

    # -- hook ----------------------------------------------------------

    def begin_batch(self, now: int) -> None:
        super().begin_batch(now)
        self._check_clock(now)
        self._batch_index += 1
        if self._batch_index % self.every == 0:
            self.check_invariants(now)

    # -- invariant sweep ----------------------------------------------

    def check_invariants(self, now: int) -> None:
        """Run the full read-only sweep; raises InvariantViolation."""
        self.batches_checked += 1
        cache_counts = self._cache_charges_by_pid()
        for process in self.vmm.processes:
            self._check_residency(process)
            self._check_cgroup(process, cache_counts.get(process.pid, 0))
        self._check_completion_queue(now)
        self._check_slabs()

    # -- clock / completion queue -------------------------------------

    def _check_clock(self, now: int) -> None:
        last = self._last_batch_now
        if last is not None and now < last:
            raise InvariantViolation(
                f"batch clock ran backwards: begin_batch({now}) after begin_batch({last})"
            )
        self._last_batch_now = now

    def _check_completion_queue(self, now: int) -> None:
        live = 0
        for arrival_at, _seq, entry in self.cq._arrivals:
            if entry.done:
                continue
            live += 1
            if entry.arrival_at < entry.issued_at:
                raise InvariantViolation(
                    f"completion-queue entry {entry.key!r}: arrival {entry.arrival_at}"
                    f" precedes issue {entry.issued_at}"
                )
            if entry.arrival_at <= now:
                raise InvariantViolation(
                    f"completion-queue entry {entry.key!r} overdue after drain:"
                    f" arrival {entry.arrival_at} <= now {now}"
                )
            if arrival_at > entry.arrival_at:
                raise InvariantViolation(
                    f"completion-queue heap key {arrival_at} exceeds entry deadline"
                    f" {entry.arrival_at} for {entry.key!r}"
                )
        per_core = sum(self.cq._per_core.values())
        if per_core != live:
            raise InvariantViolation(
                f"completion-queue per-core depths sum to {per_core}, {live} live entries"
            )

    # -- residency ----------------------------------------------------

    def _check_residency(self, process) -> None:
        table = process.page_table
        mapped = set(table._entries)
        lru = process.resident_lru
        on_lru = {key for key in lru._active} | {key for key in lru._inactive}
        if mapped != on_lru:
            only_table = sorted(mapped - on_lru)[:5]
            only_lru = sorted(on_lru - mapped)[:5]
            raise InvariantViolation(
                f"pid {process.pid}: page table and residency LRU disagree"
                f" ({len(mapped)} mapped vs {len(on_lru)} on LRU;"
                f" table-only {only_table}, lru-only {only_lru})"
            )
        mask = table.resident_mask
        if mask is not None:
            import numpy as np

            resident = int(mask.sum())
            if resident != len(mapped):
                raise InvariantViolation(
                    f"pid {process.pid}: resident_mask counts {resident},"
                    f" page table maps {len(mapped)}"
                )
            if mapped and not bool(np.all(mask[sorted(mapped)])):
                raise InvariantViolation(
                    f"pid {process.pid}: resident_mask clears a mapped vpn"
                )

    # -- cgroup accounting --------------------------------------------

    def _cache_charges_by_pid(self) -> dict[int, int]:
        """Unconsumed shared-cache entries per pid (one ordered pass)."""
        counts: dict[int, int] = {}
        for key, entry in self.vmm.cache.entries.items():
            if not entry.consumed:
                pid = key[0]
                counts[pid] = counts.get(pid, 0) + 1
        return counts

    def _check_cgroup(self, process, unconsumed_cache: int) -> None:
        if process.cache_charged != unconsumed_cache:
            raise InvariantViolation(
                f"pid {process.pid}: cache_charged ledger says {process.cache_charged},"
                f" cache holds {unconsumed_cache} unconsumed entries"
            )
        resident = len(process.page_table)
        expected = resident + process.cache_charged
        charged = process.cgroup.charged_pages
        if charged != expected:
            raise InvariantViolation(
                f"pid {process.pid}: cgroup charges {charged} pages, expected"
                f" {resident} resident + {process.cache_charged} cached = {expected}"
            )
        if process.cgroup.limit_pages is not None and charged > process.cgroup.limit_pages:
            raise InvariantViolation(
                f"pid {process.pid}: cgroup charge {charged} exceeds limit"
                f" {process.cgroup.limit_pages}"
            )

    # -- slab allocator -----------------------------------------------

    def _check_slabs(self) -> None:
        backend = getattr(self.vmm.data_path, "backend", None)
        agent = getattr(backend, "agent", None)
        allocator = getattr(agent, "allocator", None)
        if allocator is None:
            return
        for slab in allocator.slabs.values():
            if len(slab.page_slots) != slab.used_slots:
                raise InvariantViolation(
                    f"slab {slab.slab_id}: used_slots={slab.used_slots} but"
                    f" {len(slab.page_slots)} pages mapped"
                )
            seen_slots: set[int] = set()
            for key, slot in slab.page_slots.items():
                if slot in seen_slots:
                    raise InvariantViolation(
                        f"slab {slab.slab_id}: slot {slot} assigned to two pages"
                    )
                seen_slots.add(slot)
                if not (0 <= slot < len(slab.slot_pages)) or slab.slot_pages[slot] != key:
                    raise InvariantViolation(
                        f"slab {slab.slab_id}: slot {slot} does not map back to {key!r}"
                    )
            for slot in slab.free_slots:
                if slot in seen_slots:
                    raise InvariantViolation(
                        f"slab {slab.slab_id}: slot {slot} is both free and occupied"
                    )
                if slab.slot_pages[slot] is not None:
                    raise InvariantViolation(
                        f"slab {slab.slab_id}: free slot {slot} still holds"
                        f" {slab.slot_pages[slot]!r}"
                    )
        for key, loc in allocator._locations.items():
            slab = allocator.slabs.get(loc.slab_id)
            if slab is None or slab.page_slots.get(key) != loc.slot:
                raise InvariantViolation(
                    f"allocator location {loc} for {key!r} disagrees with its slab"
                )


def install_sanitizer(
    vmm: "VirtualMemoryManager", every: int | None = None
) -> SanitizingFaultPipeline:
    """Swap *vmm*'s pipeline for the sanitizing subclass (same CQ).

    Called by :class:`repro.sim.machine.Machine` right after VMM
    construction, before any access runs, so the sanitizing pipeline
    inherits an empty completion queue and fresh reclaim schedule.
    """
    pipeline = SanitizingFaultPipeline(
        vmm,
        vmm.pipeline.cq,
        every=sanitize_every() if every is None else every,
    )
    vmm.pipeline = pipeline
    return pipeline
