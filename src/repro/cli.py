"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common interactive uses:

* ``compare`` — run one workload on D-VMM and D-VMM+Leap, print the
  latency and prefetch-quality comparison (the quickstart, as a CLI);
* ``run`` — run one workload on one configuration and print its
  metrics (pick the system, prefetcher, medium, and memory limit);
* ``figures`` — list the benchmark targets that regenerate each of
  the paper's tables and figures.
"""

from __future__ import annotations

import argparse
import sys

from repro.metrics.report import format_table
from repro.sim.machine import Machine, disk_config, infiniswap_config, leap_config
from repro.sim.simulate import simulate
from repro.workloads.base import Workload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.numpy_matmul import NumpyMatmulWorkload
from repro.workloads.patterns import (
    RandomWorkload,
    SequentialWorkload,
    StrideWorkload,
    ZipfianWorkload,
)
from repro.workloads.powergraph import PowerGraphWorkload
from repro.workloads.voltdb import VoltDBWorkload

__all__ = ["main", "build_parser"]

WORKLOADS = {
    "sequential": SequentialWorkload,
    "stride": StrideWorkload,
    "random": RandomWorkload,
    "zipfian": ZipfianWorkload,
    "powergraph": PowerGraphWorkload,
    "numpy": NumpyMatmulWorkload,
    "voltdb": VoltDBWorkload,
    "memcached": MemcachedWorkload,
}

SYSTEMS = {
    "disk": lambda args: disk_config(medium="hdd", seed=args.seed),
    "ssd": lambda args: disk_config(medium="ssd", seed=args.seed),
    "d-vmm": lambda args: infiniswap_config(seed=args.seed),
    "leap": lambda args: leap_config(seed=args.seed),
}

FIGURES = [
    ("fig1", "benchmarks/test_fig1_datapath_breakdown.py", "data path stage budget"),
    ("fig2", "benchmarks/test_fig2_default_path_latency.py", "default-path latency CDFs"),
    ("fig3", "benchmarks/test_fig3_pattern_windows.py", "strict vs majority patterns"),
    ("fig4", "benchmarks/test_fig4_lazy_eviction.py", "cache eviction wait"),
    ("tab1", "benchmarks/test_tab1_prefetcher_matrix.py", "technique comparison"),
    ("fig7", "benchmarks/test_fig7_leap_latency.py", "Leap latency (104x headline)"),
    ("fig8a", "benchmarks/test_fig8a_benefit_breakdown.py", "component breakdown"),
    ("fig8b", "benchmarks/test_fig8b_slow_storage.py", "prefetcher on HDD/SSD"),
    ("fig9", "benchmarks/test_fig9_prefetcher_cache.py", "cache adds/misses/completion"),
    ("fig10", "benchmarks/test_fig10_prefetch_quality.py", "accuracy/coverage/timeliness"),
    ("fig11", "benchmarks/test_fig11_applications.py", "application grid"),
    ("fig12", "benchmarks/test_fig12_cache_limit.py", "constrained prefetch cache"),
    ("fig13", "benchmarks/test_fig13_concurrent_apps.py", "four concurrent applications"),
    ("ablation", "benchmarks/test_ablation_leap_parameters.py", "Hsize/PWsize/Nsplit sweeps"),
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Effectively Prefetching Remote Memory with Leap'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload", choices=sorted(WORKLOADS))
        p.add_argument("--wss-pages", type=int, default=8_192)
        p.add_argument("--accesses", type=int, default=30_000)
        p.add_argument("--memory", type=float, default=0.5,
                       help="local memory as a fraction of the working set")
        p.add_argument("--stride", type=int, default=10,
                       help="stride for the stride workload")
        p.add_argument("--seed", type=int, default=42)

    compare = sub.add_parser("compare", help="D-VMM default path vs Leap")
    add_workload_args(compare)

    run = sub.add_parser("run", help="run one workload on one system")
    add_workload_args(run)
    run.add_argument("--system", choices=sorted(SYSTEMS), default="leap")

    sub.add_parser("figures", help="list paper-figure benchmark targets")
    return parser


def _make_workload(args) -> Workload:
    cls = WORKLOADS[args.workload]
    kwargs = dict(
        wss_pages=args.wss_pages, total_accesses=args.accesses, seed=args.seed
    )
    if args.workload == "stride":
        kwargs["stride"] = args.stride
    return cls(**kwargs)


def _run_one(config, args) -> dict:
    machine = Machine(config)
    workload = _make_workload(args)
    result = simulate(machine, {1: workload}, memory_fraction=args.memory)
    summary = result.recorder.summary()
    metrics = result.metrics
    return {
        "completion_s": result.completion_seconds(1),
        "p50_us": summary.get("p50", 0.0) / 1000,
        "p99_us": summary.get("p99", 0.0) / 1000,
        "faults": metrics.faults,
        "misses": metrics.misses,
        "coverage": metrics.coverage,
        "accuracy": metrics.accuracy,
    }


def _print_rows(rows: dict[str, dict]) -> None:
    print(
        format_table(
            ["system", "completion (s)", "p50 (us)", "p99 (us)",
             "faults", "misses", "coverage", "accuracy"],
            [
                (
                    name,
                    f"{row['completion_s']:.3f}",
                    f"{row['p50_us']:.2f}",
                    f"{row['p99_us']:.2f}",
                    row["faults"],
                    row["misses"],
                    f"{row['coverage']:.1%}",
                    f"{row['accuracy']:.1%}",
                )
                for name, row in rows.items()
            ],
        )
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        print(
            format_table(
                ["id", "benchmark", "regenerates"],
                FIGURES,
                title="Run with: pytest <benchmark> --benchmark-only -s",
            )
        )
        return 0
    if args.command == "run":
        rows = {args.system: _run_one(SYSTEMS[args.system](args), args)}
        _print_rows(rows)
        return 0
    if args.command == "compare":
        rows = {
            "d-vmm": _run_one(infiniswap_config(seed=args.seed), args),
            "d-vmm+leap": _run_one(leap_config(seed=args.seed), args),
        }
        _print_rows(rows)
        gain = rows["d-vmm"]["p50_us"] / max(rows["d-vmm+leap"]["p50_us"], 1e-9)
        print(f"\nmedian fault-latency improvement: {gain:.1f}x")
        return 0
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
