"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Seven commands cover the common interactive uses:

* ``compare`` — run one workload on D-VMM and D-VMM+Leap, print the
  latency and prefetch-quality comparison (the quickstart, as a CLI);
* ``run`` — run one workload on one configuration and print its
  metrics (pick the system, prefetcher, medium, and memory limit);
* ``concurrent`` — run several workloads at once through the
  multi-core engine (core contention, migration, per-app latency),
  optionally emitting a ``BENCH_*.json`` perf artifact;
* ``cluster`` — run several workloads against a multi-server memory
  cluster (per-server queue pairs and latency, live-load placement),
  optionally crashing a server mid-run to exercise slab remap and
  archive re-fetch recovery;
* ``scenario`` — the multi-tenant scenario engine: ``list`` the named
  traffic mixes, ``run`` one (optionally on the cluster with failure
  timelines and limit schedules), or ``sweep`` a scenario grid across
  {cores × servers × prefetchers} and emit the results as JSON;
* ``perf`` — the CI perf gate: emit a scaled-down profile artifact
  (``fig13``, ``cluster``, or ``scenarios``) and compare it against a
  committed baseline;
* ``figures`` — list the benchmark targets that regenerate each of
  the paper's tables and figures.
"""

from __future__ import annotations

import argparse
import sys

from repro.metrics.report import format_table
from repro.sim.machine import (
    Machine,
    cluster_config,
    disk_config,
    infiniswap_config,
    leap_config,
)
from repro.sim.simulate import simulate
from repro.workloads.base import Workload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.numpy_matmul import NumpyMatmulWorkload
from repro.workloads.patterns import (
    RandomWorkload,
    SequentialWorkload,
    StrideWorkload,
    ZipfianWorkload,
)
from repro.workloads.powergraph import PowerGraphWorkload
from repro.workloads.voltdb import VoltDBWorkload

__all__ = ["main", "build_parser"]

WORKLOADS = {
    "sequential": SequentialWorkload,
    "stride": StrideWorkload,
    "random": RandomWorkload,
    "zipfian": ZipfianWorkload,
    "powergraph": PowerGraphWorkload,
    "numpy": NumpyMatmulWorkload,
    "voltdb": VoltDBWorkload,
    "memcached": MemcachedWorkload,
}

SYSTEMS = {
    "disk": lambda args: disk_config(medium="hdd", seed=args.seed),
    "ssd": lambda args: disk_config(medium="ssd", seed=args.seed),
    "d-vmm": lambda args: infiniswap_config(seed=args.seed),
    "leap": lambda args: leap_config(seed=args.seed),
}

FIGURES = [
    ("fig1", "benchmarks/test_fig1_datapath_breakdown.py", "data path stage budget"),
    ("fig2", "benchmarks/test_fig2_default_path_latency.py", "default-path latency CDFs"),
    ("fig3", "benchmarks/test_fig3_pattern_windows.py", "strict vs majority patterns"),
    ("fig4", "benchmarks/test_fig4_lazy_eviction.py", "cache eviction wait"),
    ("tab1", "benchmarks/test_tab1_prefetcher_matrix.py", "technique comparison"),
    ("fig7", "benchmarks/test_fig7_leap_latency.py", "Leap latency (104x headline)"),
    ("fig8a", "benchmarks/test_fig8a_benefit_breakdown.py", "component breakdown"),
    ("fig8b", "benchmarks/test_fig8b_slow_storage.py", "prefetcher on HDD/SSD"),
    ("fig9", "benchmarks/test_fig9_prefetcher_cache.py", "cache adds/misses/completion"),
    ("fig10", "benchmarks/test_fig10_prefetch_quality.py", "accuracy/coverage/timeliness"),
    ("fig11", "benchmarks/test_fig11_applications.py", "application grid"),
    ("fig12", "benchmarks/test_fig12_cache_limit.py", "constrained prefetch cache"),
    ("fig13", "benchmarks/test_fig13_concurrent_apps.py", "four concurrent applications"),
    ("ablation", "benchmarks/test_ablation_leap_parameters.py", "Hsize/PWsize/Nsplit sweeps"),
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Effectively Prefetching Remote Memory with Leap'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload", choices=sorted(WORKLOADS))
        p.add_argument("--wss-pages", type=int, default=8_192)
        p.add_argument("--accesses", type=int, default=30_000)
        p.add_argument(
            "--memory",
            type=float,
            default=0.5,
            help="local memory as a fraction of the working set",
        )
        p.add_argument(
            "--stride", type=int, default=10, help="stride for the stride workload"
        )
        p.add_argument("--seed", type=int, default=42)

    compare = sub.add_parser("compare", help="D-VMM default path vs Leap")
    add_workload_args(compare)

    run = sub.add_parser("run", help="run one workload on one system")
    add_workload_args(run)
    run.add_argument("--system", choices=sorted(SYSTEMS), default="leap")

    concurrent = sub.add_parser(
        "concurrent", help="run several workloads at once across cores"
    )
    concurrent.add_argument(
        "workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        help="one process per workload name (repeats allowed)",
    )
    concurrent.add_argument("--system", choices=sorted(SYSTEMS), default="leap")
    concurrent.add_argument("--cores", type=int, default=4)
    concurrent.add_argument("--wss-pages", type=int, default=8_192)
    concurrent.add_argument("--accesses", type=int, default=30_000)
    concurrent.add_argument("--memory", type=float, default=0.5)
    concurrent.add_argument("--seed", type=int, default=42)
    concurrent.add_argument("--no-migration", action="store_true")
    concurrent.add_argument(
        "--perf-out", metavar="DIR", help="write a BENCH_concurrent.json artifact"
    )

    cluster = sub.add_parser(
        "cluster", help="run workloads against a multi-server memory cluster"
    )
    cluster.add_argument(
        "workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        help="one process per workload name (repeats allowed)",
    )
    cluster.add_argument("--servers", type=int, default=4)
    cluster.add_argument("--server-qps", type=int, default=2)
    cluster.add_argument(
        "--latency-spread",
        type=float,
        default=0.15,
        help="seeded per-server fabric-median spread in [0, 1)",
    )
    cluster.add_argument("--cores", type=int, default=4)
    cluster.add_argument("--wss-pages", type=int, default=8_192)
    cluster.add_argument("--accesses", type=int, default=30_000)
    cluster.add_argument("--memory", type=float, default=0.5)
    cluster.add_argument("--seed", type=int, default=42)
    cluster.add_argument("--no-migration", action="store_true")
    cluster.add_argument(
        "--fail-server",
        type=int,
        metavar="ID",
        help="crash this memory server mid-run (slabs are remapped)",
    )
    cluster.add_argument(
        "--fail-at-ms",
        type=float,
        default=5.0,
        help="when to crash it, in ms of measured simulated time",
    )
    cluster.add_argument(
        "--recover-at-ms",
        type=float,
        metavar="MS",
        help="bring the crashed server back (empty) at this time",
    )
    cluster.add_argument(
        "--perf-out", metavar="DIR", help="write a BENCH_cluster.json artifact"
    )

    def int_list(text: str) -> list[int]:
        try:
            return [int(token) for token in text.split(",") if token]
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected a comma-separated integer list, got {text!r}"
            ) from None

    scenario = sub.add_parser(
        "scenario", help="declare/run/sweep multi-tenant traffic scenarios"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_sub.add_parser("list", help="list the registered scenarios")

    def add_scenario_scale_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--wss-pages", type=int, default=2_048,
                       help="per-tenant working set (pages)")
        p.add_argument("--accesses", type=int, default=24_000,
                       help="scenario access budget (split across tenants)")
        p.add_argument("--seed", type=int, default=42)

    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario and print per-tenant metrics"
    )
    scenario_run.add_argument("name", help="a scenario from `repro scenario list`")
    scenario_run.add_argument("--cores", type=int, default=4)
    scenario_run.add_argument(
        "--servers",
        type=int,
        default=0,
        help="memory servers (0 = flat remote fabric; failure timelines force a cluster)",
    )
    scenario_run.add_argument(
        "--prefetcher", help="override the scenario's prefetcher choice"
    )
    scenario_run.add_argument(
        "--json", action="store_true", help="emit the result payload as JSON"
    )
    add_scenario_scale_args(scenario_run)

    scenario_sweep = scenario_sub.add_parser(
        "sweep", help="run scenarios across a {cores x servers x prefetchers} grid"
    )
    scenario_sweep.add_argument(
        "names",
        nargs="*",
        help="scenarios to sweep (default: all registered)",
    )
    scenario_sweep.add_argument(
        "--cores", type=int_list, default=[2, 4], metavar="N,N"
    )
    scenario_sweep.add_argument(
        "--servers", type=int_list, default=[2, 4], metavar="N,N"
    )
    scenario_sweep.add_argument(
        "--prefetchers",
        default="leap,readahead",
        help="comma-separated prefetcher list",
    )
    scenario_sweep.add_argument(
        "--out", metavar="FILE", help="write the sweep payload as JSON"
    )
    add_scenario_scale_args(scenario_sweep)

    from repro.perf.__main__ import add_perf_arguments

    perf = sub.add_parser(
        "perf", help="emit/gate a perf artifact (fig13, cluster, or scenarios)"
    )
    add_perf_arguments(perf)

    sub.add_parser("figures", help="list paper-figure benchmark targets")
    return parser


def _make_workload(args) -> Workload:
    cls = WORKLOADS[args.workload]
    kwargs = dict(
        wss_pages=args.wss_pages, total_accesses=args.accesses, seed=args.seed
    )
    if args.workload == "stride":
        kwargs["stride"] = args.stride
    return cls(**kwargs)


def _run_one(config, args) -> dict:
    machine = Machine(config)
    workload = _make_workload(args)
    result = simulate(machine, {1: workload}, memory_fraction=args.memory)
    summary = result.recorder.summary()
    metrics = result.metrics
    return {
        "completion_s": result.completion_seconds(1),
        "p50_us": summary.get("p50", 0.0) / 1000,
        "p99_us": summary.get("p99", 0.0) / 1000,
        "faults": metrics.faults,
        "misses": metrics.misses,
        "coverage": metrics.coverage,
        "accuracy": metrics.accuracy,
    }


def _print_rows(rows: dict[str, dict]) -> None:
    print(
        format_table(
            [
                "system",
                "completion (s)",
                "p50 (us)",
                "p99 (us)",
                "faults",
                "misses",
                "coverage",
                "accuracy",
            ],
            [
                (
                    name,
                    f"{row['completion_s']:.3f}",
                    f"{row['p50_us']:.2f}",
                    f"{row['p99_us']:.2f}",
                    row["faults"],
                    row["misses"],
                    f"{row['coverage']:.1%}",
                    f"{row['accuracy']:.1%}",
                )
                for name, row in rows.items()
            ],
        )
    )


def _run_concurrent(args) -> int:
    from repro.perf.artifacts import write_artifact
    from repro.perf.profile import percentiles_us, profile_concurrent

    machine = Machine(SYSTEMS[args.system](args))
    workloads = {}
    names = {}
    for index, name in enumerate(args.workloads):
        pid = index + 1
        cls = WORKLOADS[name]
        kwargs = dict(
            wss_pages=args.wss_pages, total_accesses=args.accesses, seed=args.seed + index
        )
        workloads[pid] = cls(**kwargs)
        names[pid] = f"{name}#{pid}"
    try:
        result = machine.run_concurrent(
            workloads,
            cores=args.cores,
            memory_fraction=args.memory,
            allow_migration=not args.no_migration,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = []
    for pid, name in names.items():
        summary = result.processes[pid]
        stats = percentiles_us(summary.fault_latencies)
        rows.append(
            (
                name,
                f"{summary.completion_seconds:.3f}",
                f"{stats['p50_us']:.2f}",
                f"{stats['p95_us']:.2f}",
                f"{stats['p99_us']:.2f}",
                len(summary.fault_latencies),
                f"{summary.core_wait_ns / 1e6:.1f}",
                summary.migrations,
            )
        )
    print(
        format_table(
            [
                "process",
                "completion (s)",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "faults",
                "core wait (ms)",
                "migrations",
            ],
            rows,
            title=f"{len(workloads)} processes on {args.cores} cores "
            f"({args.system}, {args.memory:.0%} memory)",
        )
    )
    print(
        f"\nmakespan: {result.makespan_ns / 1e9:.3f}s  "
        f"migrations: {result.migrations}"
    )
    if args.perf_out:
        artifact = profile_concurrent(
            result,
            names,
            bench="concurrent",
            config={
                "seed": args.seed,
                "cores": args.cores,
                "system": args.system,
                "workloads": list(args.workloads),
            },
        )
        print(f"wrote {write_artifact(artifact, args.perf_out)}")
    return 0


def _run_cluster(args) -> int:
    from repro.cluster import FailureEvent
    from repro.perf.artifacts import write_artifact
    from repro.perf.profile import percentiles_us, profile_cluster
    from repro.sim.units import ms

    if args.fail_server is not None:
        if not 0 <= args.fail_server < args.servers:
            print(
                f"error: --fail-server {args.fail_server} outside the cluster "
                f"(servers are 0..{args.servers - 1})",
                file=sys.stderr,
            )
            return 2
        if (
            args.recover_at_ms is not None
            and args.recover_at_ms <= args.fail_at_ms
        ):
            print(
                f"error: --recover-at-ms {args.recover_at_ms} must be after "
                f"--fail-at-ms {args.fail_at_ms}",
                file=sys.stderr,
            )
            return 2
    machine = Machine(
        cluster_config(
            seed=args.seed,
            remote_machines=args.servers,
            server_qps=args.server_qps,
            server_latency_spread=args.latency_spread,
        )
    )
    workloads = {}
    names = {}
    for index, name in enumerate(args.workloads):
        pid = index + 1
        cls = WORKLOADS[name]
        workloads[pid] = cls(
            wss_pages=args.wss_pages,
            total_accesses=args.accesses,
            seed=args.seed + index,
        )
        names[pid] = f"{name}#{pid}"
    failure_plan = []
    if args.fail_server is not None:
        failure_plan.append(
            FailureEvent(ms(args.fail_at_ms), args.fail_server, "fail")
        )
        if args.recover_at_ms is not None:
            failure_plan.append(
                FailureEvent(ms(args.recover_at_ms), args.fail_server, "recover")
            )
    try:
        result = machine.run_cluster(
            workloads,
            cores=args.cores,
            memory_fraction=args.memory,
            allow_migration=not args.no_migration,
            failure_plan=failure_plan,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = []
    for pid, name in names.items():
        summary = result.processes[pid]
        stats = percentiles_us(summary.fault_latencies)
        rows.append(
            (
                name,
                f"{summary.completion_seconds:.3f}",
                f"{stats['p50_us']:.2f}",
                f"{stats['p95_us']:.2f}",
                f"{stats['p99_us']:.2f}",
                len(summary.fault_latencies),
            )
        )
    print(
        format_table(
            ["process", "completion (s)", "p50 (us)", "p95 (us)", "p99 (us)", "faults"],
            rows,
            title=f"{len(workloads)} processes on {args.cores} cores x "
            f"{args.servers} memory servers ({args.memory:.0%} memory)",
        )
    )
    agent = machine.host_agent
    server_rows = []
    for server_id, server in sorted(agent.remote_agents.items()):
        stats = percentiles_us(server.read_latencies)
        server_rows.append(
            (
                server_id,
                "up" if server.alive else "DOWN",
                f"{stats['p50_us']:.2f}",
                f"{stats['p95_us']:.2f}",
                f"{stats['p99_us']:.2f}",
                server.reads,
                server.writes,
                f"{server.utilization:.2%}",
            )
        )
    print()
    print(
        format_table(
            [
                "server",
                "state",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "reads",
                "writes",
                "util",
            ],
            server_rows,
            title="memory servers",
        )
    )
    recovery = agent.recovery_stats()
    print(
        f"\nslot reuse: {recovery['slot_reuses']} reused / "
        f"{recovery['slot_releases']} released"
    )
    if args.fail_server is not None:
        if machine.cluster.servers[args.fail_server].failures == 0:
            print(
                f"warning: the run ended before --fail-at-ms "
                f"{args.fail_at_ms} — server {args.fail_server} was never "
                f"crashed (raise --accesses or lower --fail-at-ms)"
            )
        else:
            checked, mismatched = agent.verify_contents()
            print(
                f"recovery: {recovery['remapped_slabs']} slabs remapped "
                f"({recovery['promoted_slabs']} replica promotions, "
                f"{recovery['refetched_pages']} pages re-fetched from disk, "
                f"{recovery['lost_pages']} lost); "
                f"contents: {checked - mismatched}/{checked} identical"
            )
    if args.perf_out:
        artifact = profile_cluster(
            result,
            names,
            bench="cluster",
            config={
                "seed": args.seed,
                "cores": args.cores,
                "servers": args.servers,
                "workloads": list(args.workloads),
            },
        )
        print(f"wrote {write_artifact(artifact, args.perf_out)}")
    return 0


def _scenario_list() -> int:
    from repro.scenarios import list_scenarios

    rows = []
    for scenario in list_scenarios():
        extras = []
        if scenario.popularity_skew is not None:
            extras.append(f"zipf {scenario.popularity_skew:g}")
        if scenario.memory_schedule:
            extras.append("limit schedule")
        if scenario.failures:
            extras.append("failures")
        rows.append(
            (
                scenario.name,
                len(scenario.tenants),
                ", ".join(extras) or "-",
                scenario.description,
            )
        )
    print(
        format_table(
            ["scenario", "tenants", "features", "description"],
            rows,
            title="Run with: repro scenario run <name>",
        )
    )
    return 0


def _scenario_run(args) -> int:
    import json

    from repro.scenarios import run_scenario

    try:
        payload = run_scenario(
            args.name,
            seed=args.seed,
            cores=args.cores,
            servers=args.servers,
            prefetcher=args.prefetcher,
            wss_pages=args.wss_pages,
            total_accesses=args.accesses,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    config = payload["config"]
    print(
        format_table(
            [
                "tenant",
                "workload",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "hit rate",
                "faults",
                "completion (s)",
            ],
            [
                (
                    name,
                    row["workload"],
                    f"{row['p50_us']:.2f}",
                    f"{row['p95_us']:.2f}",
                    f"{row['p99_us']:.2f}",
                    f"{row['hit_rate']:.1%}",
                    row["faults"],
                    f"{row['completion_s']:.3f}",
                )
                for name, row in payload["tenants"].items()
            ],
            title=f"scenario {payload['scenario']} — {config['cores']} cores, "
            f"{config['servers']} servers, {config['prefetcher']} "
            f"({config['engine']} engine)",
        )
    )
    totals = payload["totals"]
    print(
        f"\nmakespan: {totals['makespan_s']:.3f}s  faults: {totals['faults']}  "
        f"migrations: {totals['migrations']}"
    )
    unfired = totals.get("unfired_timeline_events", 0)
    if unfired:
        print(
            f"warning: {unfired} scheduled event(s) (memory phases / "
            f"failures) never fired — the run ended first (raise "
            f"--accesses or use earlier event times)"
        )
    if "recovery" in payload:
        recovery = payload["recovery"]
        print(
            f"recovery: {recovery['remapped_slabs']} slabs remapped, "
            f"{recovery['refetched_pages']} pages re-fetched, "
            f"{recovery['lost_pages']} lost"
        )
    return 0


def _scenario_sweep(args) -> int:
    import json
    from pathlib import Path

    from repro.scenarios import scenario_names, sweep_scenarios

    names = args.names or scenario_names()
    prefetchers = [token for token in args.prefetchers.split(",") if token]
    try:
        payload = sweep_scenarios(
            names,
            cores=args.cores,
            servers=args.servers,
            prefetchers=prefetchers,
            seed=args.seed,
            wss_pages=args.wss_pages,
            total_accesses=args.accesses,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = []
    for run in payload["runs"]:
        worst_p95 = max(row["p95_us"] for row in run["tenants"].values())
        rows.append(
            (
                run["scenario"],
                run["cores"],
                run["servers"],
                run["prefetcher"],
                f"{worst_p95:.2f}",
                f"{run['totals']['makespan_s']:.3f}",
                run["totals"]["faults"],
            )
        )
    print(
        format_table(
            [
                "scenario",
                "cores",
                "servers",
                "prefetcher",
                "worst p95 (us)",
                "makespan (s)",
                "faults",
            ],
            rows,
            title=f"{len(payload['runs'])} grid points "
            f"({len(names)} scenarios, seed {args.seed})",
        )
    )
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        print(
            format_table(
                ["id", "benchmark", "regenerates"],
                FIGURES,
                title="Run with: pytest <benchmark> --benchmark-only -s",
            )
        )
        return 0
    if args.command == "run":
        rows = {args.system: _run_one(SYSTEMS[args.system](args), args)}
        _print_rows(rows)
        return 0
    if args.command == "concurrent":
        return _run_concurrent(args)
    if args.command == "cluster":
        return _run_cluster(args)
    if args.command == "scenario":
        if args.scenario_command == "list":
            return _scenario_list()
        if args.scenario_command == "run":
            return _scenario_run(args)
        return _scenario_sweep(args)
    if args.command == "perf":
        from repro.perf.__main__ import run as perf_run

        return perf_run(args)
    if args.command == "compare":
        rows = {
            "d-vmm": _run_one(infiniswap_config(seed=args.seed), args),
            "d-vmm+leap": _run_one(leap_config(seed=args.seed), args),
        }
        _print_rows(rows)
        gain = rows["d-vmm"]["p50_us"] / max(rows["d-vmm+leap"]["p50_us"], 1e-9)
        print(f"\nmedian fault-latency improvement: {gain:.1f}x")
        return 0
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
