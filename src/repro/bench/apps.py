"""Application-level experiments: Figures 4, 11, 12, and 13.

The end-to-end section of the evaluation: the four applications under
cgroup limits of 100% / 50% / 25% across Disk, D-VMM (Infiniswap
default path), and D-VMM + Leap; constrained prefetch-cache sizes; and
all four applications contending for the fabric at once.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.bench.prefetch import application_workloads
from repro.bench.runner import BenchScale, run_single, run_single_concurrent
from repro.metrics.latency import summarize
from repro.perf.artifacts import ARTIFACT_SCHEMA_VERSION, write_artifact
from repro.perf.profile import profile_concurrent
from repro.sim.machine import Machine, disk_config, infiniswap_config, leap_config
from repro.workloads.powergraph import PowerGraphWorkload

__all__ = [
    "Fig4Result",
    "Fig11Cell",
    "Fig12Cell",
    "Fig13Cell",
    "fig4_lazy_eviction_wait",
    "fig11_applications",
    "fig12_cache_limits",
    "fig13_concurrent_applications",
    "THROUGHPUT_APPS",
]

#: Applications the paper reports as throughput rather than completion.
THROUGHPUT_APPS = ("voltdb", "memcached")


# --------------------------------------------------------------------------
# Figure 4
# --------------------------------------------------------------------------
@dataclass
class Fig4Result:
    policy: str
    stale_wait_p50_ms: float
    stale_wait_p99_ms: float
    freed_entries: int


def fig4_lazy_eviction_wait(scale: BenchScale = BenchScale()) -> list[Fig4Result]:
    """How long consumed cache pages linger before being freed.

    Under the kernel's lazy policy a consumed entry waits for a kswapd
    scan (seconds-scale in the paper's Figure 4); Leap's eager policy
    frees it at consume time, so its waits collapse to zero.
    """
    results = []
    for policy, config in (
        ("lazy", infiniswap_config(seed=scale.seed)),
        ("eager", leap_config(seed=scale.seed)),
    ):
        workload = PowerGraphWorkload(
            wss_pages=scale.wss_pages, total_accesses=scale.accesses, seed=scale.seed
        )
        result = run_single(config, workload, memory_fraction=0.5)
        waits = result.cache_stats.stale_wait_ns
        stats = summarize(waits)
        results.append(
            Fig4Result(
                policy=policy,
                stale_wait_p50_ms=stats["p50"] / 1e6,
                stale_wait_p99_ms=stats["p99"] / 1e6,
                freed_entries=len(waits),
            )
        )
    return results


# --------------------------------------------------------------------------
# Figure 11
# --------------------------------------------------------------------------
@dataclass
class Fig11Cell:
    application: str
    system: str
    memory_fraction: float
    completion_seconds: float
    throughput_kops: float | None
    faults: int


def fig11_applications(
    scale: BenchScale = BenchScale(),
    fractions: tuple[float, ...] = (1.0, 0.5, 0.25),
) -> list[Fig11Cell]:
    """The full application × system × memory-limit grid."""
    systems = [
        ("disk", lambda: disk_config(medium="hdd", seed=scale.seed)),
        ("d-vmm", lambda: infiniswap_config(seed=scale.seed)),
        ("d-vmm+leap", lambda: leap_config(seed=scale.seed)),
    ]
    cells = []
    for app_name in ("powergraph", "numpy", "voltdb", "memcached"):
        for fraction in fractions:
            for system_name, config_fn in systems:
                workload = application_workloads(scale)[app_name]
                result = run_single(config_fn(), workload, memory_fraction=fraction)
                throughput = None
                if app_name in THROUGHPUT_APPS:
                    throughput = (
                        result.processes[1].throughput_per_second(workload.total_ops)
                        / 1000.0
                    )
                cells.append(
                    Fig11Cell(
                        application=app_name,
                        system=system_name,
                        memory_fraction=fraction,
                        completion_seconds=result.completion_seconds(1),
                        throughput_kops=throughput,
                        faults=result.metrics.faults,
                    )
                )
    return cells


def fig11_lookup(
    cells: list[Fig11Cell], application: str, system: str, fraction: float
) -> Fig11Cell:
    """Find one grid cell (helper for assertions and reports)."""
    for cell in cells:
        if (
            cell.application == application
            and cell.system == system
            and abs(cell.memory_fraction - fraction) < 1e-9
        ):
            return cell
    raise KeyError((application, system, fraction))


# --------------------------------------------------------------------------
# Figure 12
# --------------------------------------------------------------------------
@dataclass
class Fig12Cell:
    application: str
    cache_limit_pages: int | None
    completion_seconds: float
    throughput_kops: float | None


def fig12_cache_limits(
    scale: BenchScale = BenchScale(),
    cache_limits: tuple[int | None, ...] = (None, 2048, 256, 32),
    perf_dir: str | None = None,
) -> list[Fig12Cell]:
    """Leap under shrinking prefetch-cache budgets (Figure 12).

    The paper uses absolute sizes (unbounded / 320 MB / 32 MB /
    3.2 MB); at our scaled working sets the equivalent pressure points
    are expressed in pages.  The expected result is Leap's: because
    prefetched pages are consumed and eagerly freed quickly, even a
    cache of tens of pages costs only ~12% performance.

    Runs on the concurrent engine (one core per single-app run); with
    *perf_dir* (or ``$REPRO_PERF_DIR``) set, each run's per-app latency
    percentiles land in a ``BENCH_fig12.json`` artifact.
    """
    perf_dir = perf_dir if perf_dir is not None else os.environ.get("REPRO_PERF_DIR")
    cells = []
    perf_apps: dict[str, dict] = {}
    started = time.perf_counter()
    for app_name in ("powergraph", "numpy", "voltdb", "memcached"):
        for limit in cache_limits:
            config = leap_config(seed=scale.seed, cache_capacity_pages=limit)
            workload = application_workloads(scale)[app_name]
            result = run_single_concurrent(config, workload, memory_fraction=0.5)
            throughput = None
            if app_name in THROUGHPUT_APPS:
                throughput = (
                    result.processes[1].throughput_per_second(workload.total_ops) / 1000.0
                )
            cells.append(
                Fig12Cell(
                    application=app_name,
                    cache_limit_pages=limit,
                    completion_seconds=result.completion_seconds(1),
                    throughput_kops=throughput,
                )
            )
            if perf_dir:
                row_name = f"{app_name}@{'inf' if limit is None else limit}"
                perf_apps.update(
                    profile_concurrent(result, {1: row_name}, bench="fig12")["apps"]
                )
    if perf_dir:
        write_artifact(
            {
                "schema": ARTIFACT_SCHEMA_VERSION,
                "bench": "fig12",
                "engine": "concurrent",
                "config": {"seed": scale.seed, "cores": 1},
                "apps": perf_apps,
                "wall_clock_s": round(time.perf_counter() - started, 3),
            },
            perf_dir,
        )
    return cells


# --------------------------------------------------------------------------
# Figure 13
# --------------------------------------------------------------------------
@dataclass
class Fig13Cell:
    application: str
    system: str
    completion_seconds: float


def fig13_concurrent_applications(
    scale: BenchScale = BenchScale(),
    cores: int = 4,
    perf_dir: str | None = None,
) -> list[Fig13Cell]:
    """All four applications sharing one host and fabric (Figure 13).

    Each application keeps its own 50% cgroup limit and a home core;
    the event-driven concurrent engine interleaves them, so they
    contend for cores and the RDMA dispatch queues and — on the default
    path — confuse each other's shared readahead state, while Leap's
    per-(process, core) trackers stay isolated.

    With *perf_dir* (or ``$REPRO_PERF_DIR``) set, each system's run
    emits a ``BENCH_fig13_<system>.json`` latency artifact.
    """
    perf_dir = perf_dir if perf_dir is not None else os.environ.get("REPRO_PERF_DIR")
    pids = {"powergraph": 1, "numpy": 2, "voltdb": 3, "memcached": 4}
    names = {pid: name for name, pid in pids.items()}
    cells = []
    for system_name, config_fn in (
        ("d-vmm", lambda: infiniswap_config(seed=scale.seed)),
        ("d-vmm+leap", lambda: leap_config(seed=scale.seed)),
    ):
        machine = Machine(config_fn())
        workloads = {
            pids[name]: workload
            for name, workload in application_workloads(scale).items()
        }
        started = time.perf_counter()
        result = machine.run_concurrent(workloads, cores=cores, memory_fraction=0.5)
        wall_clock_s = time.perf_counter() - started
        if perf_dir:
            slug = system_name.replace("+", "_").replace("-", "")
            write_artifact(
                profile_concurrent(
                    result,
                    names,
                    bench=f"fig13_{slug}",
                    config={"seed": scale.seed, "cores": cores, "system": system_name},
                    wall_clock_s=wall_clock_s,
                ),
                perf_dir,
            )
        for name, pid in pids.items():
            cells.append(
                Fig13Cell(
                    application=name,
                    system=system_name,
                    completion_seconds=result.completion_seconds(pid),
                )
            )
    return cells
