"""Shared plumbing for the per-figure experiments.

Every experiment follows the same recipe: build machines from configs,
run workloads through :func:`repro.sim.simulate.simulate`, and reduce
the recorders into the rows the paper's figure plots.  The
:class:`BenchScale` dataclass concentrates the scale knobs so the whole
suite can be shrunk for CI or grown for fidelity from one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.machine import Machine, MachineConfig
from repro.sim.run import RunResult
from repro.sim.scheduler import ConcurrentRunResult
from repro.sim.simulate import simulate
from repro.workloads.base import Workload

__all__ = [
    "BenchScale",
    "run_single",
    "run_single_concurrent",
    "latency_improvement",
]


@dataclass(frozen=True)
class BenchScale:
    """Scale knobs shared by all experiments.

    The defaults run the full suite in a few minutes while keeping
    every ratio meaningful; the paper's absolute working-set sizes
    (9–38 GB) are scaled down ~500× with think times calibrated so the
    compute-to-fault balance is preserved (see DESIGN.md §5).
    """

    wss_pages: int = 12_288
    accesses: int = 50_000
    micro_wss_pages: int = 8_192
    micro_accesses: int = 30_000
    seed: int = 42


def run_single(
    config: MachineConfig,
    workload: Workload,
    memory_fraction: float,
    pid: int = 1,
) -> RunResult:
    """Build a machine, run one workload, return the result."""
    machine = Machine(config)
    return simulate(machine, {pid: workload}, memory_fraction=memory_fraction)


def run_single_concurrent(
    config: MachineConfig,
    workload: Workload,
    memory_fraction: float,
    pid: int = 1,
) -> ConcurrentRunResult:
    """Like :func:`run_single`, but through the concurrent engine.

    One process on one core — no contention, but the run goes through
    the same scheduler code path as the multi-tenant experiments and
    produces per-process latency samples for perf artifacts.
    """
    machine = Machine(config)
    return machine.run_concurrent(
        {pid: workload}, cores=1, memory_fraction=memory_fraction
    )


def latency_improvement(
    baseline: RunResult, improved: RunResult, percentile: float
) -> float:
    """How many times lower *improved*'s fault latency is at *percentile*."""
    base = baseline.recorder.percentile(percentile)
    new = improved.recorder.percentile(percentile)
    if new <= 0:
        return float("inf")
    return base / new
