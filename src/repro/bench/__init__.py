"""Benchmark experiments: one entry point per paper table/figure.

See DESIGN.md §4 for the experiment index.  Each function returns
structured rows; the pytest files under ``benchmarks/`` call them,
assert the paper's qualitative shape, and print the regenerated
table/series.
"""

from repro.bench.apps import (
    fig4_lazy_eviction_wait,
    fig11_applications,
    fig11_lookup,
    fig12_cache_limits,
    fig13_concurrent_applications,
)
from repro.bench.micro import (
    fig1_datapath_breakdown,
    fig2_default_path_latency,
    fig7_leap_latency,
    fig8a_benefit_breakdown,
)
from repro.bench.prefetch import (
    fig3_pattern_windows,
    fig8b_slow_storage,
    fig9_fig10_prefetcher_comparison,
    tab1_prefetcher_matrix,
)
from repro.bench.runner import BenchScale

__all__ = [
    "BenchScale",
    "fig1_datapath_breakdown",
    "fig2_default_path_latency",
    "fig3_pattern_windows",
    "fig4_lazy_eviction_wait",
    "fig7_leap_latency",
    "fig8a_benefit_breakdown",
    "fig8b_slow_storage",
    "fig9_fig10_prefetcher_comparison",
    "fig11_applications",
    "fig11_lookup",
    "fig12_cache_limits",
    "fig13_concurrent_applications",
    "tab1_prefetcher_matrix",
]
