"""Microbenchmark experiments: Figures 1, 2, 7, and 8a.

These reproduce the latency-centric early figures of the paper:

* **Figure 1** — the stage-by-stage budget of one default-path miss.
* **Figure 2** — 4 KB access latency distributions for Sequential and
  Stride-10 on the *default* data path (disk, D-VMM, D-VFS).
* **Figure 7** — the same two patterns with Leap on D-VMM and D-VFS.
* **Figure 8a** — benefit breakdown on PowerGraph: lean data path
  alone, plus the prefetcher, plus eager eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bench.runner import BenchScale, latency_improvement, run_single
from repro.datapath.stages import (
    CACHE_LOOKUP_NS,
    default_lean_stages,
    default_legacy_stages,
)
from repro.metrics.latency import percentile
from repro.sim.machine import (
    Machine,
    MachineConfig,
    disk_config,
    infiniswap_config,
    leap_config,
)
from repro.sim.rng import SimRandom
from repro.sim.units import PAGE_SIZE, to_us, us
from repro.vfs.remote_regions import RemoteRegionFS
from repro.workloads.patterns import SequentialWorkload, StrideWorkload
from repro.workloads.powergraph import PowerGraphWorkload

__all__ = [
    "Fig1Row",
    "LatencyRow",
    "Fig8aRow",
    "fig1_datapath_breakdown",
    "fig2_default_path_latency",
    "fig7_leap_latency",
    "fig8a_benefit_breakdown",
]

#: Think time for the §2 microbenchmarks (a tight touch loop).
MICRO_THINK_NS = 2_000


# --------------------------------------------------------------------------
# Figure 1
# --------------------------------------------------------------------------
@dataclass
class Fig1Row:
    stage: str
    mean_us: float


def fig1_datapath_breakdown(seed: int = 42, samples: int = 2_000) -> list[Fig1Row]:
    """Average time per data path stage, as in the Figure 1 annotations."""
    rng = SimRandom(seed, "fig1")
    legacy = default_legacy_stages(rng.spawn("legacy"))
    lean = default_lean_stages(rng.spawn("lean"))
    legacy_samples = [legacy.sample_read() for _ in range(samples)]
    lean_samples = [lean.sample_read() for _ in range(samples)]

    def mean(values: list[int]) -> float:
        return sum(values) / len(values)

    return [
        Fig1Row("cache lookup", to_us(CACHE_LOOKUP_NS)),
        Fig1Row(
            "legacy: request prep (bio + device mapping)",
            to_us(mean([s.prep_ns for s in legacy_samples])),
        ),
        Fig1Row(
            "legacy: block queueing (insert/merge/sort/stage)",
            to_us(mean([s.queueing_ns for s in legacy_samples])),
        ),
        Fig1Row(
            "driver dispatch",
            to_us(mean([s.dispatch_ns for s in legacy_samples])),
        ),
        Fig1Row(
            "leap: software overhead",
            to_us(mean([s.prep_ns for s in lean_samples])),
        ),
        Fig1Row("medium: rdma 4KB", to_us(us(4.3))),
        Fig1Row("medium: ssd 4KB", to_us(us(20))),
        Fig1Row("medium: hdd 4KB", to_us(us(91.48))),
    ]


# --------------------------------------------------------------------------
# Figures 2 and 7 — paging (D-VMM) rows
# --------------------------------------------------------------------------
@dataclass
class LatencyRow:
    system: str
    pattern: str
    p50_us: float
    p99_us: float
    samples: int


def _microbench_workload(pattern: str, scale: BenchScale):
    if pattern == "sequential":
        return SequentialWorkload(
            scale.micro_wss_pages,
            scale.micro_accesses,
            seed=scale.seed,
            think_ns=MICRO_THINK_NS,
        )
    return StrideWorkload(
        scale.micro_wss_pages,
        scale.micro_accesses,
        stride=10,
        seed=scale.seed,
        think_ns=MICRO_THINK_NS,
    )


def _paging_row(
    system: str, pattern: str, config: MachineConfig, scale: BenchScale
) -> LatencyRow:
    result = run_single(config, _microbench_workload(pattern, scale), memory_fraction=0.5)
    stats = result.recorder.summary()
    return LatencyRow(
        system=system,
        pattern=pattern,
        p50_us=to_us(stats["p50"]),
        p99_us=to_us(stats["p99"]),
        samples=int(stats["count"]),
    )


# --------------------------------------------------------------------------
# Figures 2 and 7 — file (D-VFS) rows
# --------------------------------------------------------------------------
def _micro_vpn_stream(pattern: str, wss_pages: int) -> Iterator[int]:
    if pattern == "sequential":
        position = 0
        while True:
            yield position
            position = (position + 1) % wss_pages
    else:
        phase, position = 0, 0
        while True:
            yield position
            position += 10
            if position >= wss_pages:
                phase = (phase + 1) % 10
                position = phase


def _vfs_row(system: str, pattern: str, leap: bool, scale: BenchScale) -> LatencyRow:
    config = leap_config(seed=scale.seed) if leap else infiniswap_config(seed=scale.seed)
    machine = Machine(config)
    fs = RemoteRegionFS(
        machine.vmm, SimRandom(scale.seed, "vfs-bench"), legacy_path=not leap
    )
    region = fs.create_region("bench", scale.micro_wss_pages * PAGE_SIZE)
    now = 0
    # The paper's D-VFS microbenchmark writes the region once (1 GB
    # write) and then reads it back in the pattern under test.
    for vpn in range(region.size_pages):
        latency, _ = region.write(vpn * PAGE_SIZE, PAGE_SIZE, now)
        now += latency + MICRO_THINK_NS
    machine.reset_measurements()
    samples: list[int] = []
    stream = _micro_vpn_stream(pattern, region.size_pages)
    for _ in range(scale.micro_accesses):
        vpn = next(stream)
        latency, _ = region.read(vpn * PAGE_SIZE, PAGE_SIZE, now)
        now += latency + MICRO_THINK_NS
        samples.append(latency)
    return LatencyRow(
        system=system,
        pattern=pattern,
        p50_us=to_us(percentile(samples, 50)),
        p99_us=to_us(percentile(samples, 99)),
        samples=len(samples),
    )


def fig2_default_path_latency(scale: BenchScale = BenchScale()) -> list[LatencyRow]:
    """Default-path latency for Sequential and Stride-10 (Figure 2)."""
    rows = []
    for pattern in ("sequential", "stride-10"):
        rows.append(_paging_row("disk", pattern, disk_config(medium="hdd", seed=scale.seed), scale))
        rows.append(_paging_row("d-vmm", pattern, infiniswap_config(seed=scale.seed), scale))
        rows.append(_vfs_row("d-vfs", pattern, leap=False, scale=scale))
    return rows


def fig7_leap_latency(scale: BenchScale = BenchScale()) -> dict:
    """Leap vs the default path on D-VMM and D-VFS (Figure 7)."""
    rows: list[LatencyRow] = []
    improvements: dict[str, dict[str, float]] = {}
    for pattern in ("sequential", "stride-10"):
        base = run_single(
            infiniswap_config(seed=scale.seed),
            _microbench_workload(pattern, scale),
            memory_fraction=0.5,
        )
        leap = run_single(
            leap_config(seed=scale.seed),
            _microbench_workload(pattern, scale),
            memory_fraction=0.5,
        )
        for name, result in (("d-vmm", base), ("d-vmm+leap", leap)):
            stats = result.recorder.summary()
            rows.append(
                LatencyRow(
                    name, pattern, to_us(stats["p50"]), to_us(stats["p99"]), int(stats["count"])
                )
            )
        improvements[f"d-vmm/{pattern}"] = {
            "median": latency_improvement(base, leap, 50),
            "p99": latency_improvement(base, leap, 99),
        }
        vfs_base = _vfs_row("d-vfs", pattern, leap=False, scale=scale)
        vfs_leap = _vfs_row("d-vfs+leap", pattern, leap=True, scale=scale)
        rows.extend([vfs_base, vfs_leap])
        improvements[f"d-vfs/{pattern}"] = {
            "median": vfs_base.p50_us / vfs_leap.p50_us,
            "p99": vfs_base.p99_us / vfs_leap.p99_us,
        }
    return {"rows": rows, "improvements": improvements}


# --------------------------------------------------------------------------
# Figure 8a
# --------------------------------------------------------------------------
@dataclass
class Fig8aRow:
    variant: str
    p50_us: float
    p95_us: float
    p99_us: float


def fig8a_benefit_breakdown(scale: BenchScale = BenchScale()) -> list[Fig8aRow]:
    """Leap's component-by-component latency benefit (Figure 8a)."""
    variants = [
        ("data path only", leap_config(prefetcher="none", eviction="lazy", seed=scale.seed)),
        ("+ prefetcher", leap_config(eviction="lazy", seed=scale.seed)),
        ("+ eager eviction", leap_config(seed=scale.seed)),
    ]
    rows = []
    for name, config in variants:
        workload = PowerGraphWorkload(
            wss_pages=scale.wss_pages, total_accesses=scale.accesses, seed=scale.seed
        )
        result = run_single(config, workload, memory_fraction=0.5)
        stats = result.recorder.summary()
        rows.append(
            Fig8aRow(name, to_us(stats["p50"]), to_us(stats["p95"]), to_us(stats["p99"]))
        )
    return rows
