"""Prefetcher-quality experiments: Table 1, Figures 3, 8b, 9, 10.

These isolate the *prefetching algorithm* from the data path, the way
§5.2 does: PowerGraph runs on the default (block-layer) path against a
local disk, with only the prefetcher swapped between Next-N-Line,
Stride, Linux Read-Ahead, and Leap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pattern_windows import WindowFractions, window_fractions
from repro.bench.runner import BenchScale, run_single
from repro.metrics.latency import summarize
from repro.sim.machine import disk_config
from repro.sim.run import RunResult
from repro.workloads.base import Workload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.numpy_matmul import NumpyMatmulWorkload
from repro.workloads.powergraph import PowerGraphWorkload
from repro.workloads.voltdb import VoltDBWorkload

__all__ = [
    "PREFETCHER_PROPERTIES",
    "Fig3Cell",
    "PrefetcherRun",
    "tab1_prefetcher_matrix",
    "fig3_pattern_windows",
    "fig8b_slow_storage",
    "fig9_fig10_prefetcher_comparison",
    "application_workloads",
]

#: Table 1 of the paper, as data.  Each row: technique → the seven
#: qualitative properties the paper compares.
PREFETCHER_PROPERTIES: dict[str, dict[str, bool]] = {
    "next-n-line": {
        "low_computational_complexity": True,
        "low_memory_overhead": True,
        "unmodified_application": True,
        "hw_sw_independent": True,
        "temporal_locality": False,
        "spatial_locality": True,
        "high_prefetch_utilization": False,
    },
    "stride": {
        "low_computational_complexity": True,
        "low_memory_overhead": True,
        "unmodified_application": True,
        "hw_sw_independent": True,
        "temporal_locality": False,
        "spatial_locality": True,
        "high_prefetch_utilization": False,
    },
    "ghb-pc": {
        "low_computational_complexity": False,
        "low_memory_overhead": False,
        "unmodified_application": True,
        "hw_sw_independent": False,
        "temporal_locality": True,
        "spatial_locality": True,
        "high_prefetch_utilization": True,
    },
    "instruction-prefetch": {
        "low_computational_complexity": False,
        "low_memory_overhead": False,
        "unmodified_application": False,
        "hw_sw_independent": False,
        "temporal_locality": True,
        "spatial_locality": True,
        "high_prefetch_utilization": True,
    },
    "readahead": {
        "low_computational_complexity": True,
        "low_memory_overhead": True,
        "unmodified_application": True,
        "hw_sw_independent": True,
        "temporal_locality": True,
        "spatial_locality": True,
        "high_prefetch_utilization": False,
    },
    "leap": {
        "low_computational_complexity": True,
        "low_memory_overhead": True,
        "unmodified_application": True,
        "hw_sw_independent": True,
        "temporal_locality": True,
        "spatial_locality": True,
        "high_prefetch_utilization": True,
    },
}


def tab1_prefetcher_matrix() -> dict[str, dict[str, bool]]:
    """Table 1 as structured data (Leap satisfies every column)."""
    return PREFETCHER_PROPERTIES


def application_workloads(scale: BenchScale) -> dict[str, Workload]:
    """The four §5.3 applications at benchmark scale."""
    return {
        "powergraph": PowerGraphWorkload(
            wss_pages=scale.wss_pages, total_accesses=scale.accesses, seed=scale.seed
        ),
        "numpy": NumpyMatmulWorkload(
            wss_pages=scale.wss_pages, total_accesses=scale.accesses, seed=scale.seed
        ),
        "voltdb": VoltDBWorkload(
            wss_pages=scale.wss_pages, total_accesses=scale.accesses, seed=scale.seed
        ),
        "memcached": MemcachedWorkload(
            wss_pages=scale.wss_pages, total_accesses=scale.accesses, seed=scale.seed
        ),
    }


# --------------------------------------------------------------------------
# Figure 3
# --------------------------------------------------------------------------
@dataclass
class Fig3Cell:
    application: str
    window: int
    majority: bool
    fractions: WindowFractions


def _workload_addresses(workload: Workload) -> list[int]:
    """The workload's vpn sequence without per-access objects.

    Goes through the columnar trace path (one ``tolist`` instead of one
    ``PageAccess`` per touch); falls back to the object stream on
    installs without numpy.  Both produce the identical int sequence.
    """
    try:
        from repro.workloads.base import materialize_columns

        vpn, _, _ = materialize_columns(workload)
    except ModuleNotFoundError:
        return [access.vpn for access in workload.accesses()]
    return vpn.tolist()


def fig3_pattern_windows(scale: BenchScale = BenchScale()) -> list[Fig3Cell]:
    """Strict vs majority window classification per application."""
    cells = []
    for name, workload in application_workloads(scale).items():
        addresses = _workload_addresses(workload)
        for window in (2, 4, 8):
            cells.append(
                Fig3Cell(name, window, False, window_fractions(addresses, window))
            )
        cells.append(
            Fig3Cell(name, 8, True, window_fractions(addresses, 8, majority=True))
        )
    return cells


# --------------------------------------------------------------------------
# Figures 8b, 9, 10
# --------------------------------------------------------------------------
@dataclass
class PrefetcherRun:
    prefetcher: str
    medium: str
    completion_seconds: float
    cache_adds: int
    cache_misses: int
    accuracy: float
    coverage: float
    pollution: int
    timeliness_p50_us: float
    timeliness_p99_us: float

    @classmethod
    def from_result(cls, prefetcher: str, medium: str, result: RunResult) -> "PrefetcherRun":
        metrics = result.metrics
        timeliness = summarize(metrics.timeliness_ns)
        return cls(
            prefetcher=prefetcher,
            medium=medium,
            completion_seconds=result.completion_seconds(1),
            cache_adds=result.cache_stats.prefetch_adds,
            cache_misses=metrics.misses,
            accuracy=metrics.accuracy,
            coverage=metrics.coverage,
            pollution=result.cache_stats.evicted_unused,
            timeliness_p50_us=timeliness.get("p50", 0.0) / 1000,
            timeliness_p99_us=timeliness.get("p99", 0.0) / 1000,
        )


def _powergraph_on_disk(prefetcher: str, medium: str, scale: BenchScale) -> PrefetcherRun:
    config = disk_config(medium=medium, prefetcher=prefetcher, seed=scale.seed)
    workload = PowerGraphWorkload(
        wss_pages=scale.wss_pages, total_accesses=scale.accesses, seed=scale.seed
    )
    result = run_single(config, workload, memory_fraction=0.5)
    return PrefetcherRun.from_result(prefetcher, medium, result)


def fig8b_slow_storage(scale: BenchScale = BenchScale()) -> list[PrefetcherRun]:
    """Leap's prefetcher vs Read-Ahead on HDD and SSD (Figure 8b)."""
    runs = []
    for medium in ("hdd", "ssd"):
        for prefetcher in ("readahead", "leap"):
            runs.append(_powergraph_on_disk(prefetcher, medium, scale))
    return runs


def fig9_fig10_prefetcher_comparison(scale: BenchScale = BenchScale()) -> list[PrefetcherRun]:
    """The four-prefetcher comparison of Figures 9 and 10."""
    return [
        _powergraph_on_disk(prefetcher, "hdd", scale)
        for prefetcher in ("next-n-line", "stride", "readahead", "leap")
    ]
